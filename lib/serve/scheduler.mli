(** Bounded-admission job scheduler over persistent worker domains.

    The serve subsystem's execution backend: worker domains are
    spawned once at server start and fed through a single bounded
    queue.  {!submit} is the admission decision — a full queue sheds
    the request immediately ([None]) instead of queueing without
    bound, which the session layer maps onto the over-budget wire
    status.  Workers run pure compute closures and never touch
    sockets, so a slow client can only ever pin its own session
    thread.

    Workers are supervised: an exception escaping a worker body (the
    ["scheduler.worker"] fault site models a crash in the runtime
    around a job) respawns a replacement into the same slot and
    increments {!stats.restarts}; {!shutdown} still joins every
    domain ever spawned. *)

type t

(** A pending result; {!await} blocks the calling thread until the
    job ran. *)
type 'a ticket

(** [create ?workers ~capacity ()] spawns [workers] domains (default:
    {!Spanner_util.Pool.default_jobs}[ - 1], at least 1) behind a
    queue of at most [capacity] waiting jobs.
    @raise Invalid_argument on a non-positive [capacity] or
    [workers]. *)
val create : ?workers:int -> capacity:int -> unit -> t

(** [submit t f] enqueues [f] unless the queue is full ([None]: the
    request was shed, counted in {!stats}). *)
val submit : t -> (unit -> 'a) -> 'a ticket option

(** [await ticket] blocks until the job finished; a job that raised
    yields its exception as [Error]. *)
val await : 'a ticket -> ('a, exn) result

(** [run t f] is {!submit} + {!await}; [None] when shed. *)
val run : t -> (unit -> 'a) -> ('a, exn) result option

type stats = {
  workers : int;
  capacity : int;
  submitted : int;  (** jobs accepted into the queue, ever *)
  completed : int;  (** jobs finished by a worker, ever *)
  shed : int;  (** submissions rejected because the queue was full *)
  queued : int;  (** jobs waiting right now *)
  max_queued : int;  (** high-water mark of [queued] *)
  restarts : int;  (** crashed workers respawned by supervision *)
}

val stats : t -> stats

(** [shutdown t] stops the crew: queued jobs are drained, then every
    worker domain exits and is joined.  Subsequent {!submit}s shed. *)
val shutdown : t -> unit
