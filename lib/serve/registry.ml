(* The server's shared state: named queries, compiled-plan cache,
   document stores, decompressed-text cache.

   Reuse across requests is the whole point of serving (ROADMAP item
   1): a CLI invocation pays regex parse + Optimizer rewrite +
   automaton compilation + SLPDB load on every call, and everything
   it builds dies with the process.  Here each of those artefacts is
   built once and shared:

   - DEFINE binds a *name* to the normalized text of a parsed query.
     The compiled artefact lives in the plan cache, keyed by that
     normalized text (Algebra.to_string of the parsed expression) —
     so a named query, the same query re-DEFINEd under another name,
     and the same text sent inline all hit one cache entry, and
     repeated QUERY bodies skip parse + rewrite + fuse entirely: the
     cross-query plan cache.

   - LOAD builds a shared-SLP document store and freezes it
     (Slp.freeze): an immutable snapshot the worker domains read
     without locks.  Every LOAD refreshes the snapshot; queries
     always resolve against the snapshot current at admission time.

   - Query evaluation prefers the *compressed* domain: when a plan
     fused to a single automaton and the document's compression ratio
     makes it worthwhile, the request gets a native SLP cursor
     (Slp_spanner over the frozen snapshot) whose per-tuple delay is
     independent of the decompressed length — no decompression at
     all.  The prepared engines are themselves shared artefacts,
     cached per (query, store snapshot) so repeat queries skip the
     matrix sweep.  Everything else falls back to the *decompressed*
     text through the compiled/optimized engines; the text is
     decompressed from the frozen snapshot once (metered by the
     requesting gauge) and kept in a bounded LRU keyed by
     (store, generation, doc, root id).  Root ids alone are not a
     safe key: LOAD DOC reuses one Doc_db whose ids are monotonic,
     but LOAD PATH installs a brand-new Doc_db whose ids restart
     from scratch, so a reloaded store could collide with cached
     entries from the snapshot it replaced.  The generation — bumped
     every time a store's Doc_db is (re)created — disambiguates, so
     stale text (or a stale engine) can never serve: engine keys add
     the snapshot's node count, because LOAD DOC refreshes a heap
     store's snapshot without bumping the generation.

   Plans are compiled under the server's *default* limits and fuse
   budget: compilation is a shared, cached artefact and must not vary
   per request (a per-request max-states override governs only that
   request's evaluation gauge).

   Locking: one registry mutex guards the name/store tables; the two
   LRUs are Locked_lru and guard themselves; compilation and
   decompression run outside any lock. *)

open Spanner_core
module Limits = Spanner_util.Limits
module Locked_lru = Spanner_util.Locked_lru
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db
module Serialize = Spanner_slp.Serialize
module Arena = Spanner_store.Arena
module Corpus = Spanner_store.Corpus
module Optimizer = Spanner_engine.Optimizer
module Cursor = Spanner_engine.Cursor
module Slp_spanner = Spanner_slp.Slp_spanner

(* A store is either heap-built (LOAD DOC compressions, or an SLPDB
   file deserialized into a fresh Doc_db) or a mapped arena corpus
   (LOAD PATH on a pack-built SLPAR1/SLPMF1 file): the file's columns
   *are* the frozen snapshot, nothing is deserialized, and the store
   is read-only — LOAD DOC into it is refused rather than silently
   copied to the heap. *)
type heap_backing = {
  db : Doc_db.t;
  mutable frozen : Slp.frozen;
  mutable docs : (string * Slp.id) list;  (* name -> designated root, insertion order *)
}

type backing = Heap of heap_backing | Mapped of Corpus.t

type store_entry = {
  backing : backing;
  gen : int;  (* bumped per backing (re)creation; text-cache key component *)
}

type t = {
  mutex : Mutex.t;
  named : (string, string) Hashtbl.t;  (* query name -> normalized text *)
  stores : (string, store_entry) Hashtbl.t;
  plans : (string, Optimizer.t) Locked_lru.t;  (* normalized text -> compiled plan *)
  texts : (string * int * string * Slp.id, string) Locked_lru.t;
  (* prepared native engines: (normalized query, store, gen, snapshot
     node count) -> engine over the store's frozen snapshot *)
  engines : (string * string * int * int, Slp_spanner.engine) Locked_lru.t;
  prep : Mutex.t;  (* serializes engine preparation (matrix sweeps) *)
  defaults : Limits.t;
  fuse_states : int option;
  mutable next_gen : int;  (* guarded by [mutex] *)
}

let create ?(plan_capacity = 128) ?(doc_capacity = 128) ?(engine_capacity = 32) ?fuse_states
    ~defaults () =
  {
    mutex = Mutex.create ();
    named = Hashtbl.create 16;
    stores = Hashtbl.create 16;
    plans = Locked_lru.create ~capacity:plan_capacity ();
    texts = Locked_lru.create ~capacity:doc_capacity ();
    engines = Locked_lru.create ~capacity:engine_capacity ();
    prep = Mutex.create ();
    defaults;
    fuse_states;
    next_gen = 0;
  }

let defaults t = t.defaults

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Per-request budgets: the server defaults with any per-request
   overrides applied axis-wise.  Overrides can only *tighten* — each
   axis is the min of the override and the server default — so a
   client cannot buy more fuel/time/states/tuples than the operator
   configured (Limits uses max_int as "unbounded", which min handles:
   an unbounded default accepts any override, a bounded one caps). *)
let effective_limits t (o : Protocol.opts) =
  let clamp dflt = function None -> dflt | Some v -> min v dflt in
  {
    Limits.fuel = clamp t.defaults.Limits.fuel o.Protocol.fuel;
    time_ms = clamp t.defaults.Limits.time_ms o.Protocol.deadline_ms;
    max_states = clamp t.defaults.Limits.max_states o.Protocol.max_states;
    max_tuples = clamp t.defaults.Limits.max_tuples o.Protocol.max_tuples;
  }

(* ------------------------------------------------------------------ *)
(* Queries and plans *)

(* A body is either a bare regex formula or an algebra expression.
   Bodies that use algebra syntax ([rgx:], [pi[], [sel[], [file:])
   parse as algebra; anything else tries the formula grammar first
   and falls back to algebra, re-raising the formula error if both
   fail (it is the more helpful one for a bare-formula typo).  Note
   [file:] leaves stay gated: the parser gets no loader, so a remote
   query cannot touch the server's filesystem. *)
let looks_like_algebra body =
  let has sub =
    let n = String.length body and m = String.length sub in
    let rec at i = i + m <= n && (String.sub body i m = sub || at (i + 1)) in
    at 0
  in
  has "rgx:" || has "file:" || has "pi[" || has "sel["

let parse_body body =
  if looks_like_algebra body then Algebra.parse body
  else
    match Regex_formula.parse body with
    | f -> Algebra.Formula f
    | exception (Spanner_fa.Regex.Parse_error _ as formula_err) -> (
        match Algebra.parse body with e -> e | exception _ -> raise formula_err)

let normalize body = Algebra.to_string (parse_body body)

let compile t normalized =
  Locked_lru.find_or_add t.plans normalized (fun () ->
      Optimizer.optimize ~limits:t.defaults ?fuse_states:t.fuse_states
        (Algebra.parse normalized))

let define t ~name ~body =
  let normalized = normalize body in
  let plan = compile t normalized in
  locked t (fun () -> Hashtbl.replace t.named name normalized);
  plan

(* [plan_normalized t source] resolves a query source to its
   normalized text and compiled plan: by name through the registry, or
   by normalizing the inline text — either way one plan-cache probe,
   so repeated bodies share work.  The normalized text is the key the
   caller needs to reach the other per-query caches (engines). *)
let plan_normalized t source =
  let normalized =
    match source with
    | Protocol.Named name ->
        locked t (fun () ->
            match Hashtbl.find_opt t.named name with
            | Some n -> n
            | None -> Limits.eval_failure ~what:"query" (Printf.sprintf "unknown query %S" name))
    | Protocol.Inline body -> normalize body
  in
  (normalized, compile t normalized)

let plan t source = snd (plan_normalized t source)

(* ------------------------------------------------------------------ *)
(* Stores and documents *)

let load_doc t ~store ~doc ~text =
  if String.length text = 0 then
    Limits.eval_failure ~what:"load" "SLPs derive non-empty documents";
  locked t (fun () ->
      let entry =
        match Hashtbl.find_opt t.stores store with
        | Some e -> e
        | None ->
            let db = Doc_db.create () in
            let gen = t.next_gen in
            t.next_gen <- gen + 1;
            let e =
              {
                backing = Heap { db; frozen = Slp.freeze (Doc_db.store db); docs = [] };
                gen;
              }
            in
            Hashtbl.add t.stores store e;
            e
      in
      match entry.backing with
      | Mapped _ ->
          Limits.eval_failure ~what:"load"
            (Printf.sprintf "store %S is a mapped arena (read-only); LOAD PATH a new one"
               store)
      | Heap h ->
          let id = Doc_db.add_string h.db doc text in
          h.frozen <- Doc_db.freeze h.db;
          h.docs <- List.remove_assoc doc h.docs @ [ (doc, id) ];
          (String.length text, Doc_db.compressed_size h.db))

(* first bytes of a pack-built file: arena "SLPAR1\n\x00" or shard
   manifest "SLPMF1\n" — anything else goes through the SLPDB reader *)
let packed_magic path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let head = really_input_string ic (min 6 (in_channel_length ic)) in
      head = "SLPAR1" || head = "SLPMF1")

let load_path t ~store ~path =
  let backing, ndocs =
    if packed_magic path then begin
      let c = Corpus.open_path path in
      (Mapped c, Corpus.doc_count c)
    end
    else begin
      let db = Serialize.read_file path in
      let docs = List.map (fun name -> (name, Doc_db.find db name)) (Doc_db.names db) in
      (Heap { db; frozen = Doc_db.freeze db; docs }, List.length docs)
    end
  in
  locked t (fun () ->
      (* a fresh backing restarts root ids from 0, so the replaced
         snapshot's cached texts would collide without a new gen *)
      let gen = t.next_gen in
      t.next_gen <- gen + 1;
      Hashtbl.replace t.stores store { backing; gen });
  ndocs

(* [resolve t ~store ~doc] is the frozen snapshot, store generation
   and root of one document, as of now — immutable, so safe to
   evaluate against on any domain while later LOADs move the entry
   forward. *)
let resolve t ~store ~doc =
  locked t (fun () ->
      match Hashtbl.find_opt t.stores store with
      | None -> Limits.eval_failure ~what:"query" (Printf.sprintf "unknown store %S" store)
      | Some entry -> (
          let missing () =
            Limits.eval_failure ~what:"query"
              (Printf.sprintf "unknown document %S in store %S" doc store)
          in
          match entry.backing with
          | Heap h -> (
              match List.assoc_opt doc h.docs with
              | None -> missing ()
              | Some id -> (h.frozen, entry.gen, id))
          | Mapped c -> (
              (* the mapped columns are the snapshot: the frozen view
                 reads the file in place, no deserialization *)
              match Corpus.find c doc with
              | None -> missing ()
              | Some (si, root) -> (Arena.frozen_view (Corpus.shards c).(si), entry.gen, root))))

let doc_text t ~gauge ~store ~doc =
  let frozen, gen, id = resolve t ~store ~doc in
  Locked_lru.find_or_add t.texts (store, gen, doc, id) (fun () ->
      Slp.frozen_to_string ~gauge frozen id)

(* ------------------------------------------------------------------ *)
(* Native compressed-domain cursors *)

(* Below this the document barely compresses and the decompressed-text
   path (which also feeds the text LRU) wins; above it, skipping the
   decompression pays for the matrix sweep. *)
let native_min_ratio = 2.0

(* [reachable_within frozen id budget] is the number of nodes
   reachable from [id], or [None] as soon as the count exceeds
   [budget] — O(min(reachable, budget)) ids walked, so deciding that a
   document is too incompressible for the native path costs at most
   the node budget the ratio threshold allows it, never a full-store
   walk.  (The whole-store node count is useless as a denominator: a
   store serving many documents dilutes every per-document ratio.) *)
let reachable_within frozen id budget =
  let seen = Hashtbl.create 256 in
  let count = ref 0 in
  let stack = ref [ id ] in
  let ok = ref true in
  while !ok && !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          incr count;
          if !count > budget then ok := false
          else
            match Slp.frozen_node frozen id with
            | Slp.Leaf _ -> ()
            | Slp.Pair (l, r) -> stack := l :: r :: !stack
        end
  done;
  if !ok then Some !count else None

(* [native_cursor t ~gauge ~normalized ~store ~doc plan] is a
   constant-delay cursor over the compressed document, or [None] when
   the request must fall back to decompressed text: the plan did not
   fuse to a single automaton, or the document's compression ratio is
   too low to be worth it.  The engine (automaton × store snapshot) is
   cached and its matrix sweep — metered by the requesting [gauge],
   resumable if it trips — runs under one preparation lock; after the
   sweep, the returned cursor only reads filled slots and the frozen
   snapshot, so it is safe to drain on any domain while later requests
   prepare other roots.  The snapshot node count joins the cache key
   because LOAD DOC refreshes a heap snapshot without bumping [gen]. *)
let native_cursor t ~gauge ~normalized ~store ~doc plan =
  match Optimizer.compiled plan with
  | None -> None
  | Some ct ->
      let frozen, gen, id = resolve t ~store ~doc in
      let nodes = Slp.frozen_size frozen in
      let budget = int_of_float (float_of_int (Slp.frozen_len frozen id) /. native_min_ratio) in
      if reachable_within frozen id budget = None then None
      else begin
        let engine =
          Locked_lru.find_or_add t.engines (normalized, store, gen, nodes) (fun () ->
              Slp_spanner.of_frozen ct frozen)
        in
        Mutex.lock t.prep;
        (match Slp_spanner.prepare_gauge gauge engine id with
        | () -> Mutex.unlock t.prep
        | exception e ->
            Mutex.unlock t.prep;
            raise e);
        Some (Cursor.of_slp ~gauge engine id)
      end

(* ------------------------------------------------------------------ *)
(* Introspection *)

type counts = { queries : int; stores : int; docs : int }

let entry_docs = function
  | Heap h -> List.length h.docs
  | Mapped c -> Corpus.doc_count c

let counts t =
  locked t (fun () ->
      {
        queries = Hashtbl.length t.named;
        stores = Hashtbl.length t.stores;
        docs =
          Hashtbl.fold
            (fun _ (e : store_entry) acc -> acc + entry_docs e.backing)
            t.stores 0;
      })

type store_info = {
  sname : string;
  kind : string;  (* "heap" | "arena" *)
  sdocs : int;
  shards : int;
  mapped : int;  (* bytes of file mapping (0 for heap stores) *)
  resident : int;  (* bytes actually paged in (heap: frozen-snapshot size) *)
}

let stores_info t =
  let entries = locked t (fun () -> Hashtbl.fold (fun n e acc -> (n, e) :: acc) t.stores []) in
  (* resident_bytes reads /proc outside the registry lock *)
  List.sort compare
    (List.map
       (fun (sname, e) ->
         match e.backing with
         | Heap h ->
             {
               sname;
               kind = "heap";
               sdocs = List.length h.docs;
               shards = 1;
               mapped = 0;
               resident = Slp.frozen_bytes h.frozen;
             }
         | Mapped c ->
             {
               sname;
               kind = "arena";
               sdocs = Corpus.doc_count c;
               shards = Corpus.shard_count c;
               mapped = Corpus.mapped_bytes c;
               resident = Corpus.resident_bytes c;
             })
       entries)

type cache_stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

let cache_stats lru =
  let s = Locked_lru.stats lru in
  {
    hits = s.Spanner_util.Lru.hits;
    misses = s.Spanner_util.Lru.misses;
    evictions = s.Spanner_util.Lru.evictions;
    entries = Locked_lru.length lru;
    capacity = Locked_lru.capacity lru;
  }

let plan_cache_stats t = cache_stats t.plans
let doc_cache_stats t = cache_stats t.texts
let engine_cache_stats t = cache_stats t.engines
