(** Client-side helper: one connection, synchronous request/response.

    The one protocol-speaking code path shared by the CLI [client]
    command, the serve smoke test and the E18 load generator. *)

type t

(** [connect address] opens a connection (SIGPIPE ignored).
    @raise Unix.Unix_error when nothing listens there. *)
val connect : Server.address -> t

val close : t -> unit

(** [request t payload] sends one request and reads the full
    response: the frames up to and including the terminal one (a
    streamed reply spans header, windows, and [END]/[ERR]).
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) if the
    server hangs up mid-response. *)
val request : ?max_frame:int -> t -> string -> string list

(** [err_code frame] is [Some code] iff [frame] is an [ERR] status. *)
val err_code : string -> int option
