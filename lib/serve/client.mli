(** Client-side helper: one connection, synchronous request/response.

    The one protocol-speaking code path shared by the CLI [client]
    command, the serve smoke test and the E18 load generator.  All IO
    rides on {!Protocol}'s fd-level connections: EINTR is retried and
    partial writes looped, so signals cannot corrupt frames. *)

type t

(** [connect ?max_frame ?timeout_ms address] opens a connection
    (SIGPIPE ignored).  [timeout_ms] bounds every read and write on
    the socket — a server that stops answering surfaces as
    {!Protocol.Io_timeout} instead of a hang (0, the default,
    disables).
    @raise Unix.Unix_error when nothing listens there. *)
val connect : ?max_frame:int -> ?timeout_ms:int -> Server.address -> t

val close : t -> unit

(** [request ?attempts ?backoff_ms t payload] sends one request and
    reads the full response: the frames up to and including the
    terminal one (a streamed reply spans header, windows, and
    [END]/[ERR]).

    With [backoff_ms > 0] and an idempotent verb (QUERY, EXPLAIN,
    STATS), transport-class failures — connection refused/reset, EOF
    mid-response, a tripped timeout — reconnect and resend up to
    [attempts] times (default 4), sleeping [backoff_ms * 2^k] plus
    jitter between tries.  Mutating verbs and wire-level [ERR]
    replies are never retried.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) if the
    server hangs up mid-response (after retries, if enabled). *)
val request : ?attempts:int -> ?backoff_ms:int -> t -> string -> string list

(** [err_code frame] is [Some code] iff [frame] is an [ERR] status. *)
val err_code : string -> int option
