type t =
  | Empty
  | Epsilon
  | Chars of Charset.t
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let empty = Empty

let epsilon = Epsilon

let chars cs = if Charset.is_empty cs then Empty else Chars cs

let char c = Chars (Charset.singleton c)

let concat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | _ -> Concat (a, b)

let alt a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | Chars x, Chars y -> Chars (Charset.union x y)
  | _ -> if a = b then a else Alt (a, b)

let star = function
  | Empty | Epsilon -> Epsilon
  | Star _ as r -> r
  | r -> Star r

let plus = function Empty -> Empty | Epsilon -> Epsilon | r -> Plus r

let opt = function
  | Empty -> Epsilon
  | Epsilon -> Epsilon
  | (Star _ | Opt _) as r -> r
  | r -> Opt r

let concat_list rs = List.fold_left concat Epsilon rs

let alt_list rs = List.fold_left alt Empty rs

let str s = concat_list (List.map char (List.init (String.length s) (String.get s)))

let rec nullable = function
  | Empty | Chars _ -> false
  | Epsilon | Star _ | Opt _ -> true
  | Concat (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus r -> nullable r

let rec is_empty_lang = function
  | Empty -> true
  | Epsilon | Star _ | Opt _ -> false
  | Chars cs -> Charset.is_empty cs
  | Concat (a, b) -> is_empty_lang a || is_empty_lang b
  | Alt (a, b) -> is_empty_lang a && is_empty_lang b
  | Plus r -> is_empty_lang r

let rec size = function
  | Empty | Epsilon | Chars _ -> 1
  | Star r | Plus r | Opt r -> 1 + size r
  | Concat (a, b) | Alt (a, b) -> 1 + size a + size b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string * int

(* Bounded repetitions expand syntactically ("a{3}" = "aaa"), so
   nested counted repetitions multiply: "a{99}{99}{99}" would build
   ~10^6 nodes and deeper nestings OOM the parser itself on
   adversarial input.  Every repetition application is therefore
   capped, per count and per expanded subterm size; all three
   spanner-level parsers share these bounds. *)
let max_repeat = 4096
let max_expansion = 65536

let check_bounds ~fail ~size m n =
  if m > max_repeat || (match n with Some n -> n > max_repeat | None -> false) then
    fail "repetition count too large";
  let units = match n with None -> m + 1 | Some n -> max n 1 in
  if units * size > max_expansion then fail "bounded repetition expands too far"

(* '{', '}' and '&' are claimed by the spanner-level syntaxes (variable
   bindings and references); reserving them here keeps one escaping
   discipline across all three parsers. *)
let is_meta c = String.contains "|*+?()[]{}.\\&!" c

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if is_meta c then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error (message, st.pos))

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_class st =
  (* Called just after '['. *)
  let negated =
    match peek st with
    | Some '^' ->
        advance st;
        true
    | _ -> false
  in
  let rec items acc =
    match peek st with
    | None -> fail st "unterminated character class"
    | Some ']' ->
        advance st;
        acc
    | Some c ->
        advance st;
        let c = if c = '\\' then (match peek st with
            | Some d ->
                advance st;
                d
            | None -> fail st "dangling escape in character class")
          else c
        in
        (* A '-' between two characters denotes a range; a trailing or
           leading '-' is a literal. *)
        (match peek st with
        | Some '-' when (match st.pos + 1 < String.length st.input with
                         | true -> st.input.[st.pos + 1] <> ']'
                         | false -> false) ->
            advance st;
            let hi =
              match peek st with
              | Some '\\' ->
                  advance st;
                  (match peek st with
                  | Some d ->
                      advance st;
                      d
                  | None -> fail st "dangling escape in character class")
              | Some d ->
                  advance st;
                  d
              | None -> fail st "unterminated range"
            in
            if Char.code hi < Char.code c then fail st "inverted range";
            items (Charset.union acc (Charset.range c hi))
        | _ -> items (Charset.add acc c))
  in
  let cs = items Charset.empty in
  if negated then Charset.complement cs else cs

let rec parse_alt st =
  let left = parse_concat st in
  match peek st with
  | Some '|' ->
      advance st;
      alt left (parse_alt st)
  | _ -> left

and parse_concat st =
  let rec loop acc =
    match peek st with
    | None | Some ('|' | ')') -> acc
    | Some ('*' | '+' | '?') -> fail st "dangling postfix operator"
    | Some _ -> loop (concat acc (parse_postfix st))
  in
  loop Epsilon

(* Shared by the three spanner-level parsers: parse a bounded
   repetition suffix "{m}", "{m,}" or "{m,n}" just after the '{'.
   Returns (m, n option); n = None means unbounded. *)
and parse_bounds st =
  let read_int () =
    let start = st.pos in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st
    done;
    if st.pos = start then fail st "expected a repetition count";
    match int_of_string_opt (String.sub st.input start (st.pos - start)) with
    | Some n -> n
    | None -> fail st "repetition count too large"
  in
  let m = read_int () in
  let bounds =
    match peek st with
    | Some ',' ->
        advance st;
        (match peek st with
        | Some '0' .. '9' ->
            let n = read_int () in
            if n < m then fail st "repetition bounds out of order";
            (m, Some n)
        | _ -> (m, None))
    | _ -> (m, Some m)
  in
  expect st '}';
  bounds

and parse_postfix st =
  let base = parse_atom st in
  let rec loop r =
    match peek st with
    | Some '*' ->
        advance st;
        loop (star r)
    | Some '+' ->
        advance st;
        loop (plus r)
    | Some '?' ->
        advance st;
        loop (opt r)
    | Some '{' ->
        advance st;
        let m, n = parse_bounds st in
        check_bounds ~fail:(fail st) ~size:(size r) m n;
        let repeated = concat_list (List.init m (fun _ -> r)) in
        let tail =
          match n with
          | None -> star r
          | Some n -> concat_list (List.init (n - m) (fun _ -> opt r))
        in
        loop (concat repeated tail)
    | _ -> r
  in
  loop base

and parse_atom st =
  match peek st with
  | None -> fail st "expected an atom"
  | Some '(' ->
      advance st;
      let r = parse_alt st in
      expect st ')';
      r
  | Some '[' ->
      advance st;
      chars (parse_class st)
  | Some '.' ->
      advance st;
      Chars Charset.full
  | Some '\\' ->
      advance st;
      (match peek st with
      | Some c ->
          advance st;
          char c
      | None -> fail st "dangling escape")
  | Some (('{' | '}' | '&' | '!') as c) ->
      fail st (Printf.sprintf "reserved character '%c' must be escaped" c)
  | Some c ->
      advance st;
      char c

let parse input =
  let st = { input; pos = 0 } in
  let r = parse_alt st in
  (match peek st with None -> () | Some c -> fail st (Printf.sprintf "unexpected '%c'" c));
  r

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let rec pp_prec prec ppf r =
  let parens lvl body =
    if prec > lvl then Format.fprintf ppf "(%t)" body else body ppf
  in
  match r with
  | Empty -> Format.pp_print_string ppf "[]"
  | Epsilon -> Format.pp_print_string ppf "()"
  | Chars cs ->
      (match Charset.elements cs with
      | [ c ] when not (Charset.equal cs Charset.full) ->
          if is_meta c then Format.fprintf ppf "\\%c" c else Format.fprintf ppf "%c" c
      | _ -> Charset.pp ppf cs)
  | Alt (a, b) -> parens 0 (fun ppf -> Format.fprintf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b)
  | Concat (a, b) ->
      parens 1 (fun ppf -> Format.fprintf ppf "%a%a" (pp_prec 1) a (pp_prec 1) b)
  | Star a -> parens 2 (fun ppf -> Format.fprintf ppf "%a*" (pp_prec 2) a)
  | Plus a -> parens 2 (fun ppf -> Format.fprintf ppf "%a+" (pp_prec 2) a)
  | Opt a -> parens 2 (fun ppf -> Format.fprintf ppf "%a?" (pp_prec 2) a)

let pp ppf r = pp_prec 0 ppf r

let to_string r = Format.asprintf "%a" pp r
