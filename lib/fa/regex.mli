(** Classical regular expressions over the byte alphabet.

    These are the plain regular expressions that regex formulas
    ({!Spanner_core.Regex_formula}) extend with variable bindings, and
    that refl regexes extend further with references.  The concrete
    syntax accepted by {!parse}:

    {v
      r ::= r r            concatenation
          | r '|' r        alternation
          | r '*'          Kleene star
          | r '+'          one or more
          | r '?'          optional
          | r '{' m '}'            exactly m repetitions
          | r '{' m ',' '}'        at least m repetitions
          | r '{' m ',' n '}'      between m and n repetitions
          | '(' r ')'
          | '.'            any character
          | '[' class ']'  character class, ranges and '^' negation
          | c              literal character
          | '\' c          escaped literal
    v}

    Escapes are required for the metacharacters [|*+?()[]{}.\&]. *)

type t =
  | Empty  (** the empty language ∅ *)
  | Epsilon  (** the language {ε} *)
  | Chars of Charset.t  (** one character from the class *)
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

(** {1 Smart constructors}

    These apply the obvious simplifications ([Empty] annihilates
    concatenation, [Epsilon] is its unit, etc.) so that derived
    expressions stay small. *)

val empty : t
val epsilon : t
val chars : Charset.t -> t
val char : char -> t

(** [str s] matches exactly the string [s]. *)
val str : string -> t

val concat : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
val opt : t -> t

(** [concat_list rs] chains [rs] by {!concat}. *)
val concat_list : t list -> t

(** [alt_list rs] combines [rs] by {!alt} ([empty] if the list is
    empty). *)
val alt_list : t list -> t

(** {1 Analysis} *)

(** [nullable r] tests whether ε ∈ L(r). *)
val nullable : t -> bool

(** [is_empty_lang r] tests whether L(r) = ∅. *)
val is_empty_lang : t -> bool

(** [size r] is the number of AST nodes. *)
val size : t -> int

(** {1 Parsing and printing} *)

(** {1 Repetition caps}

    Bounded repetitions ["a{m,n}"] expand syntactically, so nested
    counted repetitions multiply and adversarial input could OOM the
    parser.  Each application is capped: counts at most {!max_repeat}
    and the expanded subterm at most {!max_expansion} nodes; beyond
    either, parsing fails with {!Parse_error}.  Shared by all three
    spanner-level parsers. *)

val max_repeat : int

val max_expansion : int

(** [check_bounds ~fail ~size m n] applies the caps to one repetition
    of a subterm of [size] nodes, calling [fail msg] (which must not
    return) on violation. *)
val check_bounds : fail:(string -> unit) -> size:int -> int -> int option -> unit

exception Parse_error of string * int
(** [Parse_error (message, position)] carries a 0-based offset into the
    input. *)

(** [parse s] parses the concrete syntax above.
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** [pp ppf r] prints a parseable rendering of [r]. *)
val pp : Format.formatter -> t -> unit

(** [to_string r] is {!pp} to a string. *)
val to_string : t -> string

(** {1 Metacharacter helpers shared with the spanner-level parsers} *)

(** [is_meta c] tests whether [c] must be escaped in literals. *)
val is_meta : char -> bool

(** [escape s] escapes the metacharacters of [s] so that
    [parse (escape s)] matches exactly [s]. *)
val escape : string -> string
