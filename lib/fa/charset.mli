(** Sets of byte characters, the transition labels of classical
    automata and the character-class literals of regular expressions. *)

type t

(** [empty] contains no characters. *)
val empty : t

(** [full] contains all 256 byte characters. *)
val full : t

(** [singleton c] contains exactly [c]. *)
val singleton : char -> t

(** [of_string s] contains exactly the characters occurring in [s]. *)
val of_string : string -> t

(** [range lo hi] contains the characters [lo..hi] inclusive. *)
val range : char -> char -> t

(** [add cs c] is [cs ∪ {c}]. *)
val add : t -> char -> t

(** [mem cs c] tests membership. *)
val mem : t -> char -> bool

(** [union a b], [inter a b], [diff a b] are the set operations. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t

(** [complement cs] is [full \ cs]. *)
val complement : t -> t

(** [is_empty cs] tests emptiness. *)
val is_empty : t -> bool

(** [cardinal cs] is the number of characters. *)
val cardinal : t -> int

(** [iter f cs] applies [f] to each member in ascending byte order. *)
val iter : (char -> unit) -> t -> unit

(** [elements cs] lists the members in ascending byte order. *)
val elements : t -> char list

(** [choose cs] is the smallest member, or [None]. *)
val choose : t -> char option

(** [equal a b] is extensional equality. *)
val equal : t -> t -> bool

(** [to_table cs] is the dense membership table of [cs]: a 256-entry
    array with [t.(Char.code c) = mem cs c].  Used to materialise
    byte-indexed transition tables from charset-labelled arcs. *)
val to_table : t -> bool array

(** [byte_classes sets] partitions the 256 bytes into equivalence
    classes with respect to [sets]: two bytes land in the same class
    iff no charset of [sets] separates them.  Returns
    [(class_of, count)] where [class_of] has 256 entries mapping each
    byte to its class in [0..count-1].  Transition tables indexed by
    class instead of byte are equivalent ([mem] is constant on every
    class) and typically far smaller. *)
val byte_classes : t list -> int array * int

(** [pp ppf cs] prints a compact, regex-like rendering such as
    [[a-cx]]. *)
val pp : Format.formatter -> t -> unit
