(* A charset is 8 words of 32 bits each (OCaml native ints hold 63
   bits, so 64-bit packing would silently lose bit 63): membership of
   byte [c] is bit [c land 31] of word [c lsr 5].  The backing array is
   never mutated after construction — all operations copy. *)

type t = int array

let num_words = 8

let empty = Array.make num_words 0

let full = Array.make num_words 0xFFFFFFFF

let mem cs c =
  let code = Char.code c in
  cs.(code lsr 5) land (1 lsl (code land 31)) <> 0

let add cs c =
  let code = Char.code c in
  let copy = Array.copy cs in
  copy.(code lsr 5) <- copy.(code lsr 5) lor (1 lsl (code land 31));
  copy

let singleton c = add empty c

let of_string s = String.fold_left add empty s

let range lo hi =
  let cs = Array.make num_words 0 in
  for code = Char.code lo to Char.code hi do
    cs.(code lsr 5) <- cs.(code lsr 5) lor (1 lsl (code land 31))
  done;
  cs

let map2 f a b = Array.init num_words (fun i -> f a.(i) b.(i))

let union a b = map2 ( lor ) a b

let inter a b = map2 ( land ) a b

let diff a b = map2 (fun x y -> x land lnot y) a b

let complement cs = diff full cs

let is_empty cs = Array.for_all (fun w -> w = 0) cs

let cardinal cs =
  let count w =
    let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
    loop w 0
  in
  Array.fold_left (fun acc w -> acc + count w) 0 cs

let iter f cs =
  for word = 0 to num_words - 1 do
    if cs.(word) <> 0 then
      for bit = 0 to 31 do
        if cs.(word) land (1 lsl bit) <> 0 then f (Char.chr ((word lsl 5) lor bit))
      done
  done

let elements cs =
  let acc = ref [] in
  iter (fun c -> acc := c :: !acc) cs;
  List.rev !acc

let choose cs =
  let result = ref None in
  (try
     iter
       (fun c ->
         result := Some c;
         raise Exit)
       cs
   with Exit -> ());
  !result

let equal a b = Array.for_all2 ( = ) a b

let to_table cs = Array.init 256 (fun code -> mem cs (Char.chr code))

(* Successive refinement: one pass per charset, splitting every class
   that the charset cuts (members get a fresh class id, non-members
   keep the old one).  O(256) per charset. *)
let byte_classes sets =
  let class_of = Array.make 256 0 in
  let count = ref 1 in
  List.iter
    (fun cs ->
      let members = Array.make !count 0 and totals = Array.make !count 0 in
      Array.iteri
        (fun code c ->
          totals.(c) <- totals.(c) + 1;
          if mem cs (Char.chr code) then members.(c) <- members.(c) + 1)
        class_of;
      let fresh = Array.make (Array.length members) (-1) in
      Array.iteri
        (fun c m ->
          if m > 0 && m < totals.(c) then begin
            fresh.(c) <- !count;
            incr count
          end)
        members;
      Array.iteri
        (fun code c ->
          if fresh.(c) >= 0 && mem cs (Char.chr code) then class_of.(code) <- fresh.(c))
        class_of)
    sets;
  (class_of, !count)

let pp ppf cs =
  if equal cs full then Format.pp_print_string ppf "."
  else
    match elements cs with
    | [ c ] -> Format.fprintf ppf "%c" c
    | chars ->
        (* Render maximal runs as ranges. *)
        let buf = Buffer.create 16 in
        let rec runs = function
          | [] -> ()
          | c :: rest ->
              let rec extend last = function
                | d :: rest' when Char.code d = Char.code last + 1 -> extend d rest'
                | rest' -> (last, rest')
              in
              let last, rest' = extend c rest in
              if c = last then Buffer.add_char buf c
              else if Char.code last = Char.code c + 1 then (
                Buffer.add_char buf c;
                Buffer.add_char buf last)
              else (
                Buffer.add_char buf c;
                Buffer.add_char buf '-';
                Buffer.add_char buf last);
              runs rest'
        in
        runs chars;
        Format.fprintf ppf "[%s]" (Buffer.contents buf)
