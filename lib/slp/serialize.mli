(** Persistence for SLP document databases.

    A compressed document database is the natural at-rest format for
    the §4 pipeline: compress once, store the SLP, evaluate spanners on
    it forever after.  This module writes a {!Doc_db.t} to a compact
    binary file and reads it back.

    Format (little-endian, all integers as LEB128-style varints):

    {v
      magic "SLPDB1\n"
      node count
      per node: tag 0 (leaf) + byte, or tag 1 (pair) + left id + right id
      document count
      per document: name length + name bytes + root node id
    v}

    Node ids in the file are ordered topologically (children first), so
    reading is a single pass; hash-consing on load re-shares structure
    with anything already in the target store.

    The reader treats its input as hostile: varints are rejected when
    they are longer than 9 bytes, overflow an OCaml [int], or carry a
    non-canonical zero-padding byte; every count and length field is
    validated against the bytes actually remaining before any
    allocation; node references must point backwards; document names
    must be distinct; trailing garbage is rejected.  All such failures
    raise {!Spanner_util.Limits.Spanner_error} with [Corrupt_input]. *)

(** [write_file db path] serialises the database (only nodes reachable
    from designated documents are written). *)
val write_file : Doc_db.t -> string -> unit

(** [read_file path] loads a database into a fresh store.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on a
    malformed, truncated, or hostile file. *)
val read_file : string -> Doc_db.t

(** [write_channel db oc] / [read_channel ic] are the channel-level
    variants.  [read_channel] parses to end-of-input through one
    reused fixed-size buffer — O(buffer) extra memory, never a second
    whole-file copy; on a seekable channel size fields are validated
    against the bytes actually left, on a pipe they degrade to plain
    truncation errors. *)
val write_channel : Doc_db.t -> out_channel -> unit

val read_channel : in_channel -> Doc_db.t

(** [write_string db] / [read_string s] are the in-memory variants
    (the fuzz harness and property tests drive these directly). *)
val write_string : Doc_db.t -> string

val read_string : string -> Doc_db.t
