module Vec = Spanner_util.Vec

type id = int

type node = Leaf of char | Pair of id * id

(* Per-node derived length and order are stored alongside so that
   every accessor is O(1). *)
type cell = { node : node; len : int; order : int }

type store = {
  cells : cell Vec.t;
  cons : (int * int, id) Hashtbl.t; (* hash-consing of pairs *)
  char_leaves : (char, id) Hashtbl.t;
  mutable hooks : (id -> unit) list; (* node-creation observers *)
}

let create_store () =
  {
    cells = Vec.create ();
    cons = Hashtbl.create 256;
    char_leaves = Hashtbl.create 16;
    hooks = [];
  }

let on_new_node store f = store.hooks <- f :: store.hooks

let notify store id = List.iter (fun f -> f id) store.hooks

let cell store id = Vec.get store.cells id

let node store id = (cell store id).node

let len store id = (cell store id).len

let order store id = (cell store id).order

let leaf store c =
  match Hashtbl.find_opt store.char_leaves c with
  | Some id -> id
  | None ->
      let id = Vec.push store.cells { node = Leaf c; len = 1; order = 1 } in
      Hashtbl.add store.char_leaves c id;
      notify store id;
      id

let pair store l r =
  match Hashtbl.find_opt store.cons (l, r) with
  | Some id -> id
  | None ->
      let cl = cell store l and cr = cell store r in
      let id =
        Vec.push store.cells
          { node = Pair (l, r); len = cl.len + cr.len; order = 1 + max cl.order cr.order }
      in
      Hashtbl.add store.cons (l, r) id;
      notify store id;
      id

let balance store id =
  match node store id with
  | Leaf _ -> 0
  | Pair (l, r) -> order store l - order store r

let store_size store = Vec.length store.cells

let iter_reachable store id f =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      (match node store id with
      | Leaf _ -> ()
      | Pair (l, r) ->
          visit l;
          visit r);
      f id
    end
  in
  visit id

let reachable_size store id =
  let count = ref 0 in
  iter_reachable store id (fun _ -> incr count);
  !count

let char_at store id i =
  if i < 1 || i > len store id then
    invalid_arg (Printf.sprintf "Slp.char_at: position %d out of range (length %d)" i (len store id));
  let rec go id i =
    match node store id with
    | Leaf c -> c
    | Pair (l, r) ->
        let ll = len store l in
        if i <= ll then go l i else go r (i - ll)
  in
  go id i

let to_string store id =
  let buf = Buffer.create (len store id) in
  let rec go id =
    match node store id with
    | Leaf c -> Buffer.add_char buf c
    | Pair (l, r) ->
        go l;
        go r
  in
  go id;
  Buffer.contents buf

let extract_string store id i j =
  let n = len store id in
  if i < 1 || j < i || j > n + 1 then
    invalid_arg (Printf.sprintf "Slp.extract_string: bad range [%d,%d⟩ (length %d)" i j n);
  let buf = Buffer.create (j - i) in
  (* Emit 𝔇(id)[lo..hi-1] where positions are relative 1-based. *)
  let rec go id lo hi =
    if hi >= lo then
      match node store id with
      | Leaf c -> if lo <= 1 && hi >= 1 then Buffer.add_char buf c
      | Pair (l, r) ->
          let ll = len store l in
          if lo <= ll then go l lo (min hi ll);
          if hi > ll then go r (max 1 (lo - ll)) (hi - ll)
  in
  go id i (j - 1);
  Buffer.contents buf

let of_string store s =
  if String.length s = 0 then invalid_arg "Slp.of_string: empty document";
  let acc = ref (leaf store s.[0]) in
  for i = 1 to String.length s - 1 do
    acc := pair store !acc (leaf store s.[i])
  done;
  !acc

let is_c_shallow store ~c id =
  let ok = ref true in
  iter_reachable store id (fun id ->
      let n = len store id in
      if n >= 2 && Float.of_int (order store id) > c *. (log (Float.of_int n) /. log 2.0) then
        ok := false);
  !ok

let is_strongly_balanced store id =
  let ok = ref true in
  iter_reachable store id (fun id ->
      let b = balance store id in
      if b < -1 || b > 1 then ok := false);
  !ok
