module Vec = Spanner_util.Vec
module Limits = Spanner_util.Limits

type id = int

type node = Leaf of char | Pair of id * id

(* Per-node derived length and order are stored alongside so that
   every accessor is O(1). *)
type cell = { node : node; len : int; order : int }

type store = {
  cells : cell Vec.t;
  cons : (int * int, id) Hashtbl.t; (* hash-consing of pairs *)
  char_leaves : (char, id) Hashtbl.t;
  mutable hooks : (id -> unit) list; (* node-creation observers *)
}

let create_store () =
  {
    cells = Vec.create ();
    cons = Hashtbl.create 256;
    char_leaves = Hashtbl.create 16;
    hooks = [];
  }

let on_new_node store f = store.hooks <- f :: store.hooks

let notify store id = List.iter (fun f -> f id) store.hooks

let cell store id = Vec.get store.cells id

let node store id = (cell store id).node

let len store id = (cell store id).len

let order store id = (cell store id).order

let leaf store c =
  match Hashtbl.find_opt store.char_leaves c with
  | Some id -> id
  | None ->
      let id = Vec.push store.cells { node = Leaf c; len = 1; order = 1 } in
      Hashtbl.add store.char_leaves c id;
      notify store id;
      id

let pair store l r =
  match Hashtbl.find_opt store.cons (l, r) with
  | Some id -> id
  | None ->
      let cl = cell store l and cr = cell store r in
      let id =
        Vec.push store.cells
          { node = Pair (l, r); len = cl.len + cr.len; order = 1 + max cl.order cr.order }
      in
      Hashtbl.add store.cons (l, r) id;
      notify store id;
      id

let balance store id =
  match node store id with
  | Leaf _ -> 0
  | Pair (l, r) -> order store l - order store r

let store_size store = Vec.length store.cells

(* Iterative post-order (an SLP can be 10⁶ nodes deep; recursion on
   the left child is not a tail call and blows the stack).  An [id]
   is pushed unexpanded, then re-pushed tagged once its children are
   scheduled, so children are still visited before parents. *)
let iter_reachable store id f =
  let seen = Hashtbl.create 64 in
  let stack = ref [ (id, false) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (id, expanded) :: rest ->
        stack := rest;
        if expanded then f id
        else if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          stack := (id, true) :: !stack;
          match node store id with
          | Leaf _ -> ()
          | Pair (l, r) -> stack := (l, false) :: (r, false) :: !stack
        end
  done

let reachable_size store id =
  let count = ref 0 in
  iter_reachable store id (fun _ -> incr count);
  !count

let char_at store id i =
  if i < 1 || i > len store id then
    invalid_arg (Printf.sprintf "Slp.char_at: position %d out of range (length %d)" i (len store id));
  let rec go id i =
    match node store id with
    | Leaf c -> c
    | Pair (l, r) ->
        let ll = len store l in
        if i <= ll then go l i else go r (i - ll)
  in
  go id i

(* Decompression is iterative for the same deep-SLP reason as
   [iter_reachable]: a left comb from [of_string] has depth |D|. *)
let to_string store id =
  let buf = Buffer.create (len store id) in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest -> (
        stack := rest;
        match node store id with
        | Leaf c -> Buffer.add_char buf c
        | Pair (l, r) -> stack := l :: r :: !stack)
  done;
  Buffer.contents buf

let extract_string store id i j =
  let n = len store id in
  if i < 1 || j < i || j > n + 1 then
    invalid_arg (Printf.sprintf "Slp.extract_string: bad range [%d,%d⟩ (length %d)" i j n);
  let buf = Buffer.create (j - i) in
  (* Emit 𝔇(id)[lo..hi-1] where positions are relative 1-based. *)
  let stack = ref [ (id, i, j - 1) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (id, lo, hi) :: rest ->
        stack := rest;
        if hi >= lo then (
          match node store id with
          | Leaf c -> if lo <= 1 && hi >= 1 then Buffer.add_char buf c
          | Pair (l, r) ->
              let ll = len store l in
              let right =
                if hi > ll then [ (r, max 1 (lo - ll), hi - ll) ] else []
              in
              let left = if lo <= ll then [ (l, lo, min hi ll) ] else [] in
              stack := left @ right @ !stack)
  done;
  Buffer.contents buf

let of_string store s =
  if String.length s = 0 then invalid_arg "Slp.of_string: empty document";
  let acc = ref (leaf store s.[0]) in
  for i = 1 to String.length s - 1 do
    acc := pair store !acc (leaf store s.[i])
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Frozen snapshots *)

(* A store is a mutable arena (hash-consing tables, growable cell
   buffer), so concurrent readers race against any writer and against
   the buffer's own reallocation.  A frozen view is immutable after
   construction: safe to share across domains by construction.
   Ascending id is a valid topological order — [pair] interns children
   before parents — so no separate order array is needed.

   Two representations share the accessor surface:

   - [Heap]: plain arrays copied out of a store by [freeze];
   - [Flat]: structs-of-int-arrays over Bigarray columns, built by
     [frozen_of_columns] — the zero-copy view the arena format
     (Spanner_store.Arena, SLPAR1) lays directly over an mmapped
     file.  A leaf stores [-(1 + byte)] in the left column (ids are
     never negative, so the sign is the tag); a pair stores its
     children.  Flat columns may come from an untrusted file, so the
     decoder validates per access — O(1), typed [Corrupt_input] — and
     a hostile arena can never take an accessor out of bounds. *)

type int_array = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type frozen =
  | Heap of { fnodes : node array; flens : int array }
  | Flat of { count : int; left : int_array; right : int_array; lens : int_array }

let freeze store =
  let n = Vec.length store.cells in
  Heap
    {
      fnodes = Array.init n (fun i -> (Vec.get store.cells i).node);
      flens = Array.init n (fun i -> (Vec.get store.cells i).len);
    }

let frozen_of_columns ~count ~left ~right ~lens =
  let dim a = Bigarray.Array1.dim a in
  if count < 0 then invalid_arg "Slp.frozen_of_columns: negative count";
  if dim left < count || dim right < count || dim lens < count then
    invalid_arg "Slp.frozen_of_columns: columns shorter than count";
  Flat { count; left; right; lens }

let frozen_size = function
  | Heap h -> Array.length h.fnodes
  | Flat f -> f.count

let flat_corrupt msg = Limits.corrupt ~what:"SLPAR1" msg

let frozen_node fz id =
  match fz with
  | Heap h -> h.fnodes.(id)
  | Flat f ->
      if id < 0 || id >= f.count then invalid_arg "Slp.frozen_node: id out of range";
      let l = Bigarray.Array1.unsafe_get f.left id in
      if l < 0 then begin
        let b = -l - 1 in
        if b > 255 then flat_corrupt "leaf byte out of range";
        Leaf (Char.chr b)
      end
      else begin
        let r = Bigarray.Array1.unsafe_get f.right id in
        (* children must precede their parent: ascending ids stay a
           topological order even over hostile columns *)
        if l >= id || r < 0 || r >= id then flat_corrupt "pair child out of topological order";
        Pair (l, r)
      end

let frozen_len fz id =
  match fz with
  | Heap h -> h.flens.(id)
  | Flat f ->
      if id < 0 || id >= f.count then invalid_arg "Slp.frozen_len: id out of range";
      let n = Bigarray.Array1.unsafe_get f.lens id in
      if n < 1 then flat_corrupt "node with non-positive length";
      n

let word_bytes = Sys.word_size / 8

let frozen_bytes = function
  | Flat f -> 3 * 8 * f.count
  | Heap h ->
      (* two array headers + slots, plus one boxed block per node
         (Leaf: header + char; Pair: header + two ids) *)
      let blocks =
        Array.fold_left
          (fun acc n -> acc + match n with Leaf _ -> 2 | Pair _ -> 3)
          0 h.fnodes
      in
      word_bytes * ((2 * (Array.length h.fnodes + 1)) + blocks)

(* Metered decompression: one gauge step per emitted byte, so a
   pathological document trips its budget instead of allocating
   unboundedly before evaluation even starts. *)
let frozen_to_string ?gauge fz id =
  (* the length is a size hint only, and on a Flat view it comes from
     an untrusted column: clamp so a hostile value cannot force a
     giant allocation before the first byte is even emitted *)
  let buf = Buffer.create (min (frozen_len fz id) 65536) in
  let check =
    match gauge with None -> ignore | Some g -> fun () -> Limits.check g
  in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest -> (
        stack := rest;
        match frozen_node fz id with
        | Leaf c ->
            check ();
            Buffer.add_char buf c
        | Pair (l, r) -> stack := l :: r :: !stack)
  done;
  Buffer.contents buf

let is_c_shallow store ~c id =
  let ok = ref true in
  iter_reachable store id (fun id ->
      let n = len store id in
      if n >= 2 && Float.of_int (order store id) > c *. (log (Float.of_int n) /. log 2.0) then
        ok := false);
  !ok

let is_strongly_balanced store id =
  let ok = ref true in
  iter_reachable store id (fun id ->
      let b = balance store id in
      if b < -1 || b > 1 then ok := false);
  !ok
