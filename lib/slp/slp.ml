module Vec = Spanner_util.Vec
module Limits = Spanner_util.Limits

type id = int

type node = Leaf of char | Pair of id * id

(* Per-node derived length and order are stored alongside so that
   every accessor is O(1). *)
type cell = { node : node; len : int; order : int }

type store = {
  cells : cell Vec.t;
  cons : (int * int, id) Hashtbl.t; (* hash-consing of pairs *)
  char_leaves : (char, id) Hashtbl.t;
  mutable hooks : (id -> unit) list; (* node-creation observers *)
}

let create_store () =
  {
    cells = Vec.create ();
    cons = Hashtbl.create 256;
    char_leaves = Hashtbl.create 16;
    hooks = [];
  }

let on_new_node store f = store.hooks <- f :: store.hooks

let notify store id = List.iter (fun f -> f id) store.hooks

let cell store id = Vec.get store.cells id

let node store id = (cell store id).node

let len store id = (cell store id).len

let order store id = (cell store id).order

let leaf store c =
  match Hashtbl.find_opt store.char_leaves c with
  | Some id -> id
  | None ->
      let id = Vec.push store.cells { node = Leaf c; len = 1; order = 1 } in
      Hashtbl.add store.char_leaves c id;
      notify store id;
      id

let pair store l r =
  match Hashtbl.find_opt store.cons (l, r) with
  | Some id -> id
  | None ->
      let cl = cell store l and cr = cell store r in
      let id =
        Vec.push store.cells
          { node = Pair (l, r); len = cl.len + cr.len; order = 1 + max cl.order cr.order }
      in
      Hashtbl.add store.cons (l, r) id;
      notify store id;
      id

let balance store id =
  match node store id with
  | Leaf _ -> 0
  | Pair (l, r) -> order store l - order store r

let store_size store = Vec.length store.cells

(* Iterative post-order (an SLP can be 10⁶ nodes deep; recursion on
   the left child is not a tail call and blows the stack).  An [id]
   is pushed unexpanded, then re-pushed tagged once its children are
   scheduled, so children are still visited before parents. *)
let iter_reachable store id f =
  let seen = Hashtbl.create 64 in
  let stack = ref [ (id, false) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (id, expanded) :: rest ->
        stack := rest;
        if expanded then f id
        else if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          stack := (id, true) :: !stack;
          match node store id with
          | Leaf _ -> ()
          | Pair (l, r) -> stack := (l, false) :: (r, false) :: !stack
        end
  done

let reachable_size store id =
  let count = ref 0 in
  iter_reachable store id (fun _ -> incr count);
  !count

let char_at store id i =
  if i < 1 || i > len store id then
    invalid_arg (Printf.sprintf "Slp.char_at: position %d out of range (length %d)" i (len store id));
  let rec go id i =
    match node store id with
    | Leaf c -> c
    | Pair (l, r) ->
        let ll = len store l in
        if i <= ll then go l i else go r (i - ll)
  in
  go id i

(* Decompression is iterative for the same deep-SLP reason as
   [iter_reachable]: a left comb from [of_string] has depth |D|. *)
let to_string store id =
  let buf = Buffer.create (len store id) in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest -> (
        stack := rest;
        match node store id with
        | Leaf c -> Buffer.add_char buf c
        | Pair (l, r) -> stack := l :: r :: !stack)
  done;
  Buffer.contents buf

let extract_string store id i j =
  let n = len store id in
  if i < 1 || j < i || j > n + 1 then
    invalid_arg (Printf.sprintf "Slp.extract_string: bad range [%d,%d⟩ (length %d)" i j n);
  let buf = Buffer.create (j - i) in
  (* Emit 𝔇(id)[lo..hi-1] where positions are relative 1-based. *)
  let stack = ref [ (id, i, j - 1) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (id, lo, hi) :: rest ->
        stack := rest;
        if hi >= lo then (
          match node store id with
          | Leaf c -> if lo <= 1 && hi >= 1 then Buffer.add_char buf c
          | Pair (l, r) ->
              let ll = len store l in
              let right =
                if hi > ll then [ (r, max 1 (lo - ll), hi - ll) ] else []
              in
              let left = if lo <= ll then [ (l, lo, min hi ll) ] else [] in
              stack := left @ right @ !stack)
  done;
  Buffer.contents buf

let of_string store s =
  if String.length s = 0 then invalid_arg "Slp.of_string: empty document";
  let acc = ref (leaf store s.[0]) in
  for i = 1 to String.length s - 1 do
    acc := pair store !acc (leaf store s.[i])
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Frozen snapshots *)

(* A store is a mutable arena (hash-consing tables, growable cell
   buffer), so concurrent readers race against any writer and against
   the buffer's own reallocation.  A frozen view copies the cells into
   plain immutable-after-construction arrays: safe to share across
   domains by construction.  Ascending id is a valid topological order
   — [pair] interns children before parents — so no separate order
   array is needed. *)
type frozen = { fnodes : node array; flens : int array }

let freeze store =
  let n = Vec.length store.cells in
  {
    fnodes = Array.init n (fun i -> (Vec.get store.cells i).node);
    flens = Array.init n (fun i -> (Vec.get store.cells i).len);
  }

let frozen_size fz = Array.length fz.fnodes

let frozen_node fz id = fz.fnodes.(id)

let frozen_len fz id = fz.flens.(id)

(* Metered decompression: one gauge step per emitted byte, so a
   pathological document trips its budget instead of allocating
   unboundedly before evaluation even starts. *)
let frozen_to_string ?gauge fz id =
  let buf = Buffer.create fz.flens.(id) in
  let check =
    match gauge with None -> ignore | Some g -> fun () -> Limits.check g
  in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest -> (
        stack := rest;
        match fz.fnodes.(id) with
        | Leaf c ->
            check ();
            Buffer.add_char buf c
        | Pair (l, r) -> stack := l :: r :: !stack)
  done;
  Buffer.contents buf

let is_c_shallow store ~c id =
  let ok = ref true in
  iter_reachable store id (fun id ->
      let n = len store id in
      if n >= 2 && Float.of_int (order store id) > c *. (log (Float.of_int n) /. log 2.0) then
        ok := false);
  !ok

let is_strongly_balanced store id =
  let ok = ref true in
  iter_reachable store id (fun id ->
      let b = balance store id in
      if b < -1 || b > 1 then ok := false);
  !ok
