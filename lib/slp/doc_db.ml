module Vec = Spanner_util.Vec
module Pool = Spanner_util.Pool
module Limits = Spanner_util.Limits

type t = { store : Slp.store; names : string Vec.t; table : (string, Slp.id) Hashtbl.t }

let create () = { store = Slp.create_store (); names = Vec.create (); table = Hashtbl.create 16 }

let store db = db.store

let add db name id =
  if not (Hashtbl.mem db.table name) then ignore (Vec.push db.names name);
  Hashtbl.replace db.table name id

let add_string db name s =
  let id = Balance.rebalance db.store (Builder.lz78 db.store s) in
  add db name id;
  id

let find db name = Hashtbl.find db.table name

let find_opt db name = Hashtbl.find_opt db.table name

let names db = Vec.to_list db.names

let total_len db =
  List.fold_left (fun acc name -> acc + Slp.len db.store (find db name)) 0 (names db)

let freeze db = Slp.freeze db.store

let eval_all ?jobs ?(limits = Limits.none) ?(engine = `Compressed) db ct =
  let names = Vec.to_array db.names in
  let roots = Array.map (find db) names in
  let results =
    match engine with
    | `Compressed ->
        (* Evaluate in the compressed domain: one matrix sweep over
           the shared DAG (shared nodes paid once), then parallel
           per-document enumeration over a frozen snapshot. *)
        let eng = Slp_spanner.of_compiled ct db.store in
        Slp_spanner.eval_all ?jobs ~limits eng roots
    | `Decompress ->
        (* Decompress-then-evaluate baseline.  The store is frozen
           once, so decompression itself fans out too, and each
           document's decompression is charged to the same gauge as
           its evaluation — an over-budget document degrades to its
           [Error] slot before its bytes pile up. *)
        let fz = Slp.freeze db.store in
        Pool.map_result ?jobs
          (fun id ->
            let g = Limits.start limits in
            let doc = Slp.frozen_to_string ~gauge:g fz id in
            Spanner_core.Compiled.eval_with_gauge g ct doc)
          roots
  in
  Array.to_list (Array.map2 (fun name r -> (name, r)) names results)

let compressed_size db =
  let seen = Hashtbl.create 256 in
  let count = ref 0 in
  List.iter
    (fun name ->
      Slp.iter_reachable db.store (find db name) (fun id ->
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.add seen id ();
            incr count
          end))
    (names db);
  !count
