module Vec = Spanner_util.Vec

type t = { store : Slp.store; names : string Vec.t; table : (string, Slp.id) Hashtbl.t }

let create () = { store = Slp.create_store (); names = Vec.create (); table = Hashtbl.create 16 }

let store db = db.store

let add db name id =
  if not (Hashtbl.mem db.table name) then ignore (Vec.push db.names name);
  Hashtbl.replace db.table name id

let add_string db name s =
  let id = Balance.rebalance db.store (Builder.lz78 db.store s) in
  add db name id;
  id

let find db name = Hashtbl.find db.table name

let find_opt db name = Hashtbl.find_opt db.table name

let names db = Vec.to_list db.names

let total_len db =
  List.fold_left (fun acc name -> acc + Slp.len db.store (find db name)) 0 (names db)

let eval_all ?jobs ?limits db ct =
  let names = Vec.to_array db.names in
  (* Decompression touches the shared (hash-consed, mutable) store and
     must stay on one domain; evaluation shares only immutable
     compiled tables and fans out. *)
  let docs = Array.map (fun name -> Slp.to_string db.store (find db name)) names in
  let relations = Spanner_core.Compiled.eval_all_result ?jobs ?limits ct docs in
  Array.to_list (Array.map2 (fun name r -> (name, r)) names relations)

let compressed_size db =
  let seen = Hashtbl.create 256 in
  let count = ref 0 in
  List.iter
    (fun name ->
      Slp.iter_reachable db.store (find db name) (fun id ->
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.add seen id ();
            incr count
          end))
    (names db);
  !count
