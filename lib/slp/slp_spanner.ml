open Spanner_core
module Bitset = Spanner_util.Bitset
module Bitmatrix = Spanner_util.Bitmatrix
module Vec = Spanner_util.Vec
module Pool = Spanner_util.Pool
module Limits = Spanner_util.Limits

(* The engine runs on Compiled's dense tables.  Node matrices live in
   plain node-indexed arrays (the store's ids are dense and ascending
   ids are topological), leaf matrices are shared per byte class, and
   the bottom-up sweep is iterative — no recursion anywhere on the
   preparation path, so arbitrarily deep SLPs are fine.

   Concurrency contract: [prepare]/[prepare_gauge] mutate the engine
   (matrix slots, the frozen snapshot, the matrix counter) and must
   run on one domain.  Everything else — enumeration, counting —
   only reads the frozen snapshot and already-filled slots, so once
   the roots of interest are prepared, many domains may enumerate
   concurrently ([eval_all] below). *)

type engine = {
  ct : Compiled.t;
  store : Slp.store option;  (* None: frozen-backed (mmap arena), nothing to refresh *)
  set_step : Bitmatrix.t;
  nondet : bool;  (* enumeration may repeat tuples; computed once, not per cursor *)
  ends : Bitset.t;  (* states that close a run: final, or a set arc from final *)
  mutable frozen : Slp.frozen;
  mutable pure : Bitmatrix.t option array; (* node id -> Pure_A *)
  mutable mixed : Bitmatrix.t option array; (* node id -> Mixed_A *)
  mutable pure_t : Bitmatrix.t option array; (* node id -> Pure_Aᵀ *)
  mutable mixed_t : Bitmatrix.t option array; (* node id -> Mixed_Aᵀ *)
  class_pure : Bitmatrix.t option array; (* byte class -> letter step *)
  class_mixed : Bitmatrix.t option array; (* byte class -> set·letter *)
  class_pure_t : Bitmatrix.t option array;
  class_mixed_t : Bitmatrix.t option array;
  mutable matrices : int; (* filled node slots, ×2 (pure + mixed) *)
  counts : (Slp.id * int * int, int) Hashtbl.t; (* mixed-run counts *)
}

let ending_states ct =
  let ends = Bitset.create (max 1 (Compiled.states ct)) in
  for q = 0 to Compiled.states ct - 1 do
    if Compiled.is_final_state ct q then Bitset.add ends q
    else
      Compiled.iter_set_arcs ct q (fun _ q' ->
          if Compiled.is_final_state ct q' then Bitset.add ends q)
  done;
  ends

let make_engine ct store frozen =
  let n = max 1 (Slp.frozen_size frozen) in
  let ncls = max 1 (Compiled.classes ct) in
  {
    ct;
    store;
    set_step = Compiled.set_step_matrix ct;
    nondet = not (Evset.is_deterministic (Compiled.evset ct));
    ends = ending_states ct;
    frozen;
    pure = Array.make n None;
    mixed = Array.make n None;
    pure_t = Array.make n None;
    mixed_t = Array.make n None;
    class_pure = Array.make ncls None;
    class_mixed = Array.make ncls None;
    class_pure_t = Array.make ncls None;
    class_mixed_t = Array.make ncls None;
    matrices = 0;
    counts = Hashtbl.create 256;
  }

let of_compiled ct store = make_engine ct (Some store) (Slp.freeze store)

(* A frozen-backed engine never refreshes: the snapshot (typically a
   flat view over an mmapped arena) is the whole world. *)
let of_frozen ct frozen = make_engine ct None frozen

let create e store =
  let auto = if Evset.is_deterministic e then e else Evset.determinize e in
  of_compiled (Compiled.of_evset auto) store

let compiled engine = engine.ct

let nondeterministic engine = engine.nondet

let vars engine = Compiled.vars engine.ct

let nstates engine = Compiled.states engine.ct

let matrices_computed engine = engine.matrices

(* ------------------------------------------------------------------ *)
(* Preparation: iterative bottom-up sweep                              *)

(* Leaf matrices, shared per byte class (only [prepare_gauge] calls
   these, so the lazy fill is single-domain). *)
let class_pure engine cls =
  match engine.class_pure.(cls) with
  | Some m -> m
  | None ->
      let m = Compiled.class_matrix engine.ct cls in
      engine.class_pure.(cls) <- Some m;
      m

let class_mixed engine cls =
  match engine.class_mixed.(cls) with
  | Some m -> m
  | None ->
      let m = Bitmatrix.mul engine.set_step (class_pure engine cls) in
      engine.class_mixed.(cls) <- Some m;
      m

(* Transposed leaf matrices, shared per class like their sources. *)
let class_pure_t engine cls =
  match engine.class_pure_t.(cls) with
  | Some m -> m
  | None ->
      let m = Bitmatrix.transpose (class_pure engine cls) in
      engine.class_pure_t.(cls) <- Some m;
      m

let class_mixed_t engine cls =
  match engine.class_mixed_t.(cls) with
  | Some m -> m
  | None ->
      let m = Bitmatrix.transpose (class_mixed engine cls) in
      engine.class_mixed_t.(cls) <- Some m;
      m

(* Read-only leaf lookup for the enumeration path: after preparation
   every class under a prepared root is filled. *)
let leaf_pure engine c =
  match engine.class_pure.(Compiled.class_of_char engine.ct c) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

let pure_m engine id =
  match engine.pure.(id) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

let mixed_m engine id =
  match engine.mixed.(id) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

let pure_t_m engine id =
  match engine.pure_t.(id) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

let mixed_t_m engine id =
  match engine.mixed_t.(id) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

(* Refresh the snapshot and grow the slot arrays when the store has
   gained nodes since the last preparation. *)
let refresh engine =
  match engine.store with
  | None -> ()
  | Some store ->
      let n = Slp.store_size store in
      if n > Slp.frozen_size engine.frozen then engine.frozen <- Slp.freeze store;
      if n > Array.length engine.pure then begin
        let grow a =
          let b = Array.make n None in
          Array.blit a 0 b 0 (Array.length a);
          b
        in
        engine.pure <- grow engine.pure;
        engine.mixed <- grow engine.mixed;
        engine.pure_t <- grow engine.pure_t;
        engine.mixed_t <- grow engine.mixed_t
      end

let prepare_gauge g engine id =
  refresh engine;
  let fz = engine.frozen in
  (* Reachable nodes with no matrices yet, by explicit stack. *)
  let todo = Vec.create () in
  let seen = Hashtbl.create 64 in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if engine.pure.(id) == None && not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          ignore (Vec.push todo id);
          match Slp.frozen_node fz id with
          | Slp.Leaf _ -> ()
          | Slp.Pair (l, r) -> stack := l :: r :: !stack
        end
  done;
  (* Ascending ids are children-before-parents: sort and sweep. *)
  let order = Vec.to_array todo in
  Array.sort Int.compare order;
  let nst = nstates engine in
  Array.iter
    (fun id ->
      (* one node's matrix block (products + block transposes) is
         ~nstates row unions of work *)
      Limits.charge g nst;
      let p, m, pt, mt =
        match Slp.frozen_node fz id with
        | Slp.Leaf c ->
            let cls = Compiled.class_of_char engine.ct c in
            ( class_pure engine cls,
              class_mixed engine cls,
              class_pure_t engine cls,
              class_mixed_t engine cls )
        | Slp.Pair (l, r) ->
            let pl = pure_m engine l and ml = mixed_m engine l in
            let pr = pure_m engine r and mr = mixed_m engine r in
            let p = Bitmatrix.mul pl pr in
            (* Mixed_AB = Mixed_A·Pure_B ∪ Mixed_A·Mixed_B ∪ Pure_A·Mixed_B,
               accumulated in place — no temporary unions. *)
            let m = Bitmatrix.create nst in
            Bitmatrix.mul_add ~into:m ml pr;
            Bitmatrix.mul_add ~into:m ml mr;
            Bitmatrix.mul_add ~into:m pl mr;
            (* The native enumerator intersects a left child's rows with
               a right child's columns per descent step; transposing
               here (O(n²/64) block work, much less than the products
               above) is what makes those columns one-row reads. *)
            (p, m, Bitmatrix.transpose p, Bitmatrix.transpose m)
      in
      engine.pure.(id) <- Some p;
      engine.mixed.(id) <- Some m;
      engine.pure_t.(id) <- Some pt;
      engine.mixed_t.(id) <- Some mt;
      engine.matrices <- engine.matrices + 2)
    order

let prepare engine id = prepare_gauge (Limits.unlimited ()) engine id

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

(* Enumerate every run p→q over node [id] that places ≥ 1 marker.
   Picks (0-based boundary, label id) accumulate in [picks]; [k] is
   invoked once per complete run.  Matrices guarantee every recursive
   branch taken yields at least one run, so there is no dead search.
   Recursion depth is bounded by the number of markers placed plus the
   depth of the descent to each, not by |S|. *)
let enum_mixed engine picks id0 p0 q0 offset0 k0 =
  let ct = engine.ct in
  let fz = engine.frozen in
  let n = nstates engine in
  let rec go id p q offset k =
    match Slp.frozen_node fz id with
    | Slp.Leaf c ->
        let lm = leaf_pure engine c in
        Compiled.iter_set_arcs ct p (fun lbl p' ->
            if Bitmatrix.get lm p' q then begin
              ignore (Vec.push picks (offset, lbl));
              k ();
              ignore (Vec.pop picks)
            end)
    | Slp.Pair (l, r) ->
        let m = Slp.frozen_len fz l in
        let pure_l = pure_m engine l and mixed_l = mixed_m engine l in
        let pure_r = pure_m engine r and mixed_r = mixed_m engine r in
        for mid = 0 to n - 1 do
          if Bitmatrix.get mixed_l p mid && Bitmatrix.get pure_r mid q then
            go l p mid offset k;
          if Bitmatrix.get pure_l p mid && Bitmatrix.get mixed_r mid q then
            go r mid q (offset + m) k;
          if Bitmatrix.get mixed_l p mid && Bitmatrix.get mixed_r mid q then
            go l p mid offset (fun () -> go r mid q (offset + m) k)
        done
  in
  go id0 p0 q0 offset0 k0

let tuple_of_picks ct picks extra =
  let opens = Hashtbl.create 4 in
  let tuple = ref Span_tuple.empty in
  let apply (boundary, lbl) =
    Marker.Set.iter
      (function
        | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
        | Marker.Close x ->
            let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
            tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
      (Compiled.label_markers ct lbl)
  in
  Vec.iter apply picks;
  (match extra with Some pick -> apply pick | None -> ());
  !tuple

(* Read-only enumeration over already-prepared matrices; the [picks]
   vector is the only mutable state and is local to this call, so
   concurrent calls on different documents are safe. *)
let iter_prepared engine id f =
  let ct = engine.ct in
  let n = nstates engine in
  let doc_len = Slp.frozen_len engine.frozen id in
  let init = Compiled.initial ct in
  let pure_root = pure_m engine id and mixed_root = mixed_m engine id in
  let picks = Vec.create () in
  for q = 0 to n - 1 do
    let reach_pure = Bitmatrix.get pure_root init q in
    let reach_mixed = Bitmatrix.get mixed_root init q in
    if reach_pure || reach_mixed then begin
      (* runs ending at q, then the trailing boundary. *)
      let endings = ref [] in
      if Compiled.is_final_state ct q then endings := None :: !endings;
      Compiled.iter_set_arcs ct q (fun lbl q' ->
          if Compiled.is_final_state ct q' then endings := Some (doc_len, lbl) :: !endings);
      List.iter
        (fun ending ->
          if reach_pure then f (tuple_of_picks ct picks ending);
          if reach_mixed then
            enum_mixed engine picks id init q 0 (fun () -> f (tuple_of_picks ct picks ending)))
        !endings
    end
  done

let iter engine id f =
  prepare engine id;
  iter_prepared engine id f

(* ------------------------------------------------------------------ *)
(* Native pull enumeration (ROADMAP item 3, Muñoz & Riveros)           *)

(* The pull cursor is the CPS enumerator above turned into an explicit
   machine: continuations become [task] values, the recursion becomes a
   frame stack, and each [cursor_next] runs the machine until the next
   run completes.  The enumeration order — and therefore the run
   multiset — is identical to [iter_prepared]: per ending state, per
   ending, pure run first, then mixed runs in (mid asc; L, R, B) order
   at every Pair.

   Two things make the delay small and document-independent:

   - candidate splits are found by intersecting a left child's matrix
     {e row} with a right child's transposed-matrix row (its column)
     via {!Bitset.first_common_from}, so dead mid states are skipped
     eight at a time instead of being probed one by one;
   - the machine is loop-based: no recursion, no effect handler, no
     per-pull fiber switch, and arbitrarily deep SLPs (a left-comb
     append log, say) cannot overflow the stack — which the recursive
     [enum_mixed] above can. *)

type task =
  | Emit
  | Expl of { x_id : Slp.id; x_p : int; x_q : int; x_off : int; x_k : task }

(* One suspended choice point of the depth-first search.  Frames above
   a frame on the stack explore its current choice; popping resumes the
   parent exactly where it left off. *)
type frame =
  | Pair_f of {
      g_l : Slp.id;
      g_r : Slp.id;
      g_p : int;
      g_q : int;
      g_off : int;  (* absolute offset of the left part *)
      g_roff : int;  (* absolute offset of the right part *)
      g_k : task;
      ml_p : Bitset.t;  (* row p of Mixed_L *)
      pl_p : Bitset.t;  (* row p of Pure_L *)
      prt_q : Bitset.t;  (* row q of Pure_Rᵀ — column q of Pure_R *)
      mrt_q : Bitset.t;  (* row q of Mixed_Rᵀ *)
      mutable g_mid : int;  (* next split state to consider *)
      mutable g_stage : int;  (* within g_mid: 0 try L, 1 try R, 2 try B *)
    }
  | Leaf_f of {
      f_off : int;
      f_k : task;
      f_arcs : int array;  (* marker labels compatible with the leaf matrix *)
      mutable f_arc : int;
      f_picks : int;  (* picks depth at entry: truncate to this on resume *)
    }

type cursor = {
  c_e : engine;
  c_fz : Slp.frozen;  (* snapshot captured at creation *)
  c_root : Slp.id;
  c_len : int;
  c_n : int;
  c_picks : (int * int) Vec.t;
  c_stack : frame Vec.t;
  c_proot : Bitset.t;  (* row init of Pure_root *)
  c_mroot : Bitset.t;  (* row init of Mixed_root *)
  mutable c_q : int;  (* current ending state (-1 before the scan starts) *)
  mutable c_endings : (int * int) option list;  (* endings left for c_q *)
  mutable c_ending : (int * int) option;  (* ending under exploration *)
  mutable c_emit_pure : bool;  (* owe c_ending its letters-only run *)
  mutable c_start_mixed : bool;  (* owe c_ending its mixed exploration *)
  mutable c_done : bool;
}

let cursor engine id =
  let init = Compiled.initial engine.ct in
  {
    c_e = engine;
    c_fz = engine.frozen;
    c_root = id;
    c_len = Slp.frozen_len engine.frozen id;
    c_n = nstates engine;
    c_picks = Vec.create ();
    c_stack = Vec.create ();
    c_proot = Bitmatrix.row (pure_m engine id) init;
    c_mroot = Bitmatrix.row (mixed_m engine id) init;
    c_q = -1;
    c_endings = [];
    c_ending = None;
    c_emit_pure = false;
    c_start_mixed = false;
    c_done = false;
  }

(* Push the frame exploring runs p→q over [id] (continuation [k]). *)
let start_expl cur id p q off k =
  match Slp.frozen_node cur.c_fz id with
  | Slp.Leaf ch ->
      let lm = leaf_pure cur.c_e ch in
      let arcs = Vec.create () in
      Compiled.iter_set_arcs cur.c_e.ct p (fun lbl p' ->
          if Bitmatrix.get lm p' q then ignore (Vec.push arcs lbl));
      ignore
        (Vec.push cur.c_stack
           (Leaf_f
              {
                f_off = off;
                f_k = k;
                f_arcs = Vec.to_array arcs;
                f_arc = 0;
                f_picks = Vec.length cur.c_picks;
              }))
  | Slp.Pair (l, r) ->
      ignore
        (Vec.push cur.c_stack
           (Pair_f
              {
                g_l = l;
                g_r = r;
                g_p = p;
                g_q = q;
                g_off = off;
                g_roff = off + Slp.frozen_len cur.c_fz l;
                g_k = k;
                ml_p = Bitmatrix.row (mixed_m cur.c_e l) p;
                pl_p = Bitmatrix.row (pure_m cur.c_e l) p;
                prt_q = Bitmatrix.row (pure_t_m cur.c_e r) q;
                mrt_q = Bitmatrix.row (mixed_t_m cur.c_e r) q;
                g_mid = 0;
                g_stage = 0;
              }))

(* A run just completed: emit, or explore the continuation's range. *)
let perform cur k =
  match k with
  | Emit -> Some (tuple_of_picks cur.c_e.ct cur.c_picks cur.c_ending)
  | Expl x ->
      start_expl cur x.x_id x.x_p x.x_q x.x_off x.x_k;
      None

let pop cur = ignore (Vec.pop cur.c_stack)

(* Advance the top frame: descend into its next viable choice (pushing
   a frame and returning [None]), emit a completed run, or pop. *)
let step cur =
  match Vec.last cur.c_stack with
  | Leaf_f f ->
      Vec.truncate cur.c_picks f.f_picks;
      if f.f_arc >= Array.length f.f_arcs then begin
        pop cur;
        None
      end
      else begin
        let lbl = f.f_arcs.(f.f_arc) in
        f.f_arc <- f.f_arc + 1;
        ignore (Vec.push cur.c_picks (f.f_off, lbl));
        perform cur f.f_k
      end
  | Pair_f f ->
      let descended = ref false in
      while (not !descended) && f.g_mid >= 0 && f.g_mid < cur.c_n do
        let mid = f.g_mid in
        match f.g_stage with
        | 0 ->
            (* skip dead split states word-parallel: the next mid where
               any of the three kinds is viable, in one fused pass *)
            let best = Bitset.first_split_from f.ml_p f.pl_p f.prt_q f.mrt_q mid in
            if best < 0 then f.g_mid <- -1
            else begin
              f.g_mid <- best;
              f.g_stage <- 1;
              (* kind L: markers in the left part, letters-only right *)
              if Bitset.mem f.ml_p best && Bitset.mem f.prt_q best then begin
                descended := true;
                start_expl cur f.g_l f.g_p best f.g_off f.g_k
              end
            end
        | 1 ->
            f.g_stage <- 2;
            (* kind R: letters-only left, markers in the right part *)
            if Bitset.mem f.pl_p mid && Bitset.mem f.mrt_q mid then begin
              descended := true;
              start_expl cur f.g_r mid f.g_q f.g_roff f.g_k
            end
        | _ ->
            f.g_mid <- mid + 1;
            f.g_stage <- 0;
            (* kind B: markers on both sides — explore the left, then
               the right under the reified continuation *)
            if Bitset.mem f.ml_p mid && Bitset.mem f.mrt_q mid then begin
              descended := true;
              start_expl cur f.g_l f.g_p mid f.g_off
                (Expl { x_id = f.g_r; x_p = mid; x_q = f.g_q; x_off = f.g_roff; x_k = f.g_k })
            end
      done;
      if not !descended then pop cur;
      None

let cursor_next cur =
  let ct = cur.c_e.ct in
  let init = Compiled.initial ct in
  let result = ref None in
  while !result == None && not cur.c_done do
    if cur.c_emit_pure then begin
      cur.c_emit_pure <- false;
      result := Some (tuple_of_picks ct cur.c_picks cur.c_ending)
    end
    else if cur.c_start_mixed then begin
      cur.c_start_mixed <- false;
      start_expl cur cur.c_root init cur.c_q 0 Emit
    end
    else if not (Vec.is_empty cur.c_stack) then result := step cur
    else begin
      match cur.c_endings with
      | e :: rest ->
          cur.c_endings <- rest;
          cur.c_ending <- e;
          cur.c_emit_pure <- Bitset.mem cur.c_proot cur.c_q;
          cur.c_start_mixed <- Bitset.mem cur.c_mroot cur.c_q
      | [] -> (
          (* next ending state reachable through either root matrix —
             intersecting with the precomputed ending set skips the
             barren reachable states word-parallel instead of building
             an empty endings list for each *)
          let from = cur.c_q + 1 in
          let q =
            let a = Bitset.first_common_from cur.c_proot cur.c_e.ends from in
            let b = Bitset.first_common_from cur.c_mroot cur.c_e.ends from in
            if a < 0 then b else if b < 0 then a else min a b
          in
          if q < 0 then cur.c_done <- true
          else begin
            cur.c_q <- q;
            (* runs ending at q, then the trailing boundary — same list
               order as [iter_prepared] *)
            let endings = ref [] in
            if Compiled.is_final_state ct q then endings := None :: !endings;
            Compiled.iter_set_arcs ct q (fun lbl q' ->
                if Compiled.is_final_state ct q' then
                  endings := Some (cur.c_len, lbl) :: !endings);
            cur.c_endings <- !endings
          end)
    end
  done;
  !result

let cardinal engine id =
  prepare engine id;
  let ct = engine.ct in
  let fz = engine.frozen in
  let n = nstates engine in
  (* mixed-run counts per (node, p, q), memoised. *)
  let rec count id p q =
    match Hashtbl.find_opt engine.counts (id, p, q) with
    | Some c -> c
    | None ->
        let c =
          match Slp.frozen_node fz id with
          | Slp.Leaf ch ->
              let lm = leaf_pure engine ch in
              let total = ref 0 in
              Compiled.iter_set_arcs ct p (fun _ p' ->
                  if Bitmatrix.get lm p' q then incr total);
              !total
          | Slp.Pair (l, r) ->
              let pure_l = pure_m engine l and mixed_l = mixed_m engine l in
              let pure_r = pure_m engine r and mixed_r = mixed_m engine r in
              let total = ref 0 in
              for mid = 0 to n - 1 do
                if Bitmatrix.get mixed_l p mid && Bitmatrix.get pure_r mid q then
                  total := !total + count l p mid;
                if Bitmatrix.get pure_l p mid && Bitmatrix.get mixed_r mid q then
                  total := !total + count r mid q;
                if Bitmatrix.get mixed_l p mid && Bitmatrix.get mixed_r mid q then
                  total := !total + (count l p mid * count r mid q)
              done;
              !total
        in
        Hashtbl.add engine.counts (id, p, q) c;
        c
  in
  let init = Compiled.initial ct in
  let pure_root = pure_m engine id and mixed_root = mixed_m engine id in
  let total = ref 0 in
  for q = 0 to n - 1 do
    if Bitmatrix.get pure_root init q || Bitmatrix.get mixed_root init q then begin
      let endings = ref 0 in
      if Compiled.is_final_state ct q then incr endings;
      Compiled.iter_set_arcs ct q (fun _ q' ->
          if Compiled.is_final_state ct q' then incr endings);
      let runs =
        (if Bitmatrix.get pure_root init q then 1 else 0)
        + if Bitmatrix.get mixed_root init q then count id init q else 0
      in
      total := !total + (runs * !endings)
    end
  done;
  !total

let to_relation engine id =
  let r = ref (Span_relation.empty (vars engine)) in
  iter engine id (fun t -> r := Span_relation.add !r t);
  !r

(* ------------------------------------------------------------------ *)
(* Parallel batch evaluation                                           *)

(* Collect one prepared document under its own gauge.  The tuple cap
   counts distinct tuples (the relation deduplicates runs of a
   non-deterministic automaton), and is only probed when a cap is
   actually set — Span_relation.cardinal is not O(1). *)
let collect g engine id =
  let cap = (Limits.spec g).Limits.max_tuples <> max_int in
  let r = ref (Span_relation.empty (vars engine)) in
  iter_prepared engine id (fun t ->
      Limits.check g;
      r := Span_relation.add !r t;
      if cap then Limits.check_tuples g (Span_relation.cardinal !r));
  !r

let eval_all ?jobs ?(limits = Limits.none) engine roots =
  (* One sweep covers every root: shared nodes get their matrices
     exactly once.  The sweep itself runs under a single gauge — if it
     trips there are no matrices to enumerate from, so every slot
     degrades to that error. *)
  match
    let g = Limits.start limits in
    Array.iter (fun id -> prepare_gauge g engine id) roots
  with
  | exception e -> Array.map (fun _ -> Error e) roots
  | () -> Pool.map_result ?jobs (fun id -> collect (Limits.start limits) engine id) roots
