open Spanner_core
module Bitmatrix = Spanner_util.Bitmatrix
module Vec = Spanner_util.Vec
module Pool = Spanner_util.Pool
module Limits = Spanner_util.Limits

(* The engine runs on Compiled's dense tables.  Node matrices live in
   plain node-indexed arrays (the store's ids are dense and ascending
   ids are topological), leaf matrices are shared per byte class, and
   the bottom-up sweep is iterative — no recursion anywhere on the
   preparation path, so arbitrarily deep SLPs are fine.

   Concurrency contract: [prepare]/[prepare_gauge] mutate the engine
   (matrix slots, the frozen snapshot, the matrix counter) and must
   run on one domain.  Everything else — enumeration, counting —
   only reads the frozen snapshot and already-filled slots, so once
   the roots of interest are prepared, many domains may enumerate
   concurrently ([eval_all] below). *)

type engine = {
  ct : Compiled.t;
  store : Slp.store option;  (* None: frozen-backed (mmap arena), nothing to refresh *)
  set_step : Bitmatrix.t;
  mutable frozen : Slp.frozen;
  mutable pure : Bitmatrix.t option array; (* node id -> Pure_A *)
  mutable mixed : Bitmatrix.t option array; (* node id -> Mixed_A *)
  class_pure : Bitmatrix.t option array; (* byte class -> letter step *)
  class_mixed : Bitmatrix.t option array; (* byte class -> set·letter *)
  mutable matrices : int; (* filled node slots, ×2 (pure + mixed) *)
  counts : (Slp.id * int * int, int) Hashtbl.t; (* mixed-run counts *)
}

let make_engine ct store frozen =
  let n = max 1 (Slp.frozen_size frozen) in
  let ncls = max 1 (Compiled.classes ct) in
  {
    ct;
    store;
    set_step = Compiled.set_step_matrix ct;
    frozen;
    pure = Array.make n None;
    mixed = Array.make n None;
    class_pure = Array.make ncls None;
    class_mixed = Array.make ncls None;
    matrices = 0;
    counts = Hashtbl.create 256;
  }

let of_compiled ct store = make_engine ct (Some store) (Slp.freeze store)

(* A frozen-backed engine never refreshes: the snapshot (typically a
   flat view over an mmapped arena) is the whole world. *)
let of_frozen ct frozen = make_engine ct None frozen

let create e store =
  let auto = if Evset.is_deterministic e then e else Evset.determinize e in
  of_compiled (Compiled.of_evset auto) store

let compiled engine = engine.ct

let vars engine = Compiled.vars engine.ct

let nstates engine = Compiled.states engine.ct

let matrices_computed engine = engine.matrices

(* ------------------------------------------------------------------ *)
(* Preparation: iterative bottom-up sweep                              *)

(* Leaf matrices, shared per byte class (only [prepare_gauge] calls
   these, so the lazy fill is single-domain). *)
let class_pure engine cls =
  match engine.class_pure.(cls) with
  | Some m -> m
  | None ->
      let m = Compiled.class_matrix engine.ct cls in
      engine.class_pure.(cls) <- Some m;
      m

let class_mixed engine cls =
  match engine.class_mixed.(cls) with
  | Some m -> m
  | None ->
      let m = Bitmatrix.mul engine.set_step (class_pure engine cls) in
      engine.class_mixed.(cls) <- Some m;
      m

(* Read-only leaf lookup for the enumeration path: after preparation
   every class under a prepared root is filled. *)
let leaf_pure engine c =
  match engine.class_pure.(Compiled.class_of_char engine.ct c) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

let pure_m engine id =
  match engine.pure.(id) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

let mixed_m engine id =
  match engine.mixed.(id) with
  | Some m -> m
  | None -> invalid_arg "Slp_spanner: node not prepared"

(* Refresh the snapshot and grow the slot arrays when the store has
   gained nodes since the last preparation. *)
let refresh engine =
  match engine.store with
  | None -> ()
  | Some store ->
      let n = Slp.store_size store in
      if n > Slp.frozen_size engine.frozen then engine.frozen <- Slp.freeze store;
      if n > Array.length engine.pure then begin
        let grow a =
          let b = Array.make n None in
          Array.blit a 0 b 0 (Array.length a);
          b
        in
        engine.pure <- grow engine.pure;
        engine.mixed <- grow engine.mixed
      end

let prepare_gauge g engine id =
  refresh engine;
  let fz = engine.frozen in
  (* Reachable nodes with no matrices yet, by explicit stack. *)
  let todo = Vec.create () in
  let seen = Hashtbl.create 64 in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if engine.pure.(id) == None && not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          ignore (Vec.push todo id);
          match Slp.frozen_node fz id with
          | Slp.Leaf _ -> ()
          | Slp.Pair (l, r) -> stack := l :: r :: !stack
        end
  done;
  (* Ascending ids are children-before-parents: sort and sweep. *)
  let order = Vec.to_array todo in
  Array.sort Int.compare order;
  let nst = nstates engine in
  Array.iter
    (fun id ->
      (* one matrix product is ~nstates row unions *)
      Limits.charge g nst;
      let p, m =
        match Slp.frozen_node fz id with
        | Slp.Leaf c ->
            let cls = Compiled.class_of_char engine.ct c in
            (class_pure engine cls, class_mixed engine cls)
        | Slp.Pair (l, r) ->
            let pl = pure_m engine l and ml = mixed_m engine l in
            let pr = pure_m engine r and mr = mixed_m engine r in
            let p = Bitmatrix.mul pl pr in
            (* Mixed_AB = Mixed_A·Pure_B ∪ Mixed_A·Mixed_B ∪ Pure_A·Mixed_B,
               accumulated in place — no temporary unions. *)
            let m = Bitmatrix.create nst in
            Bitmatrix.mul_add ~into:m ml pr;
            Bitmatrix.mul_add ~into:m ml mr;
            Bitmatrix.mul_add ~into:m pl mr;
            (p, m)
      in
      engine.pure.(id) <- Some p;
      engine.mixed.(id) <- Some m;
      engine.matrices <- engine.matrices + 2)
    order

let prepare engine id = prepare_gauge (Limits.unlimited ()) engine id

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

(* Enumerate every run p→q over node [id] that places ≥ 1 marker.
   Picks (0-based boundary, label id) accumulate in [picks]; [k] is
   invoked once per complete run.  Matrices guarantee every recursive
   branch taken yields at least one run, so there is no dead search.
   Recursion depth is bounded by the number of markers placed plus the
   depth of the descent to each, not by |S|. *)
let enum_mixed engine picks id0 p0 q0 offset0 k0 =
  let ct = engine.ct in
  let fz = engine.frozen in
  let n = nstates engine in
  let rec go id p q offset k =
    match Slp.frozen_node fz id with
    | Slp.Leaf c ->
        let lm = leaf_pure engine c in
        Compiled.iter_set_arcs ct p (fun lbl p' ->
            if Bitmatrix.get lm p' q then begin
              ignore (Vec.push picks (offset, lbl));
              k ();
              ignore (Vec.pop picks)
            end)
    | Slp.Pair (l, r) ->
        let m = Slp.frozen_len fz l in
        let pure_l = pure_m engine l and mixed_l = mixed_m engine l in
        let pure_r = pure_m engine r and mixed_r = mixed_m engine r in
        for mid = 0 to n - 1 do
          if Bitmatrix.get mixed_l p mid && Bitmatrix.get pure_r mid q then
            go l p mid offset k;
          if Bitmatrix.get pure_l p mid && Bitmatrix.get mixed_r mid q then
            go r mid q (offset + m) k;
          if Bitmatrix.get mixed_l p mid && Bitmatrix.get mixed_r mid q then
            go l p mid offset (fun () -> go r mid q (offset + m) k)
        done
  in
  go id0 p0 q0 offset0 k0

let tuple_of_picks ct picks extra =
  let opens = Hashtbl.create 4 in
  let tuple = ref Span_tuple.empty in
  let apply (boundary, lbl) =
    Marker.Set.iter
      (function
        | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
        | Marker.Close x ->
            let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
            tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
      (Compiled.label_markers ct lbl)
  in
  Vec.iter apply picks;
  (match extra with Some pick -> apply pick | None -> ());
  !tuple

(* Read-only enumeration over already-prepared matrices; the [picks]
   vector is the only mutable state and is local to this call, so
   concurrent calls on different documents are safe. *)
let iter_prepared engine id f =
  let ct = engine.ct in
  let n = nstates engine in
  let doc_len = Slp.frozen_len engine.frozen id in
  let init = Compiled.initial ct in
  let pure_root = pure_m engine id and mixed_root = mixed_m engine id in
  let picks = Vec.create () in
  for q = 0 to n - 1 do
    let reach_pure = Bitmatrix.get pure_root init q in
    let reach_mixed = Bitmatrix.get mixed_root init q in
    if reach_pure || reach_mixed then begin
      (* runs ending at q, then the trailing boundary. *)
      let endings = ref [] in
      if Compiled.is_final_state ct q then endings := None :: !endings;
      Compiled.iter_set_arcs ct q (fun lbl q' ->
          if Compiled.is_final_state ct q' then endings := Some (doc_len, lbl) :: !endings);
      List.iter
        (fun ending ->
          if reach_pure then f (tuple_of_picks ct picks ending);
          if reach_mixed then
            enum_mixed engine picks id init q 0 (fun () -> f (tuple_of_picks ct picks ending)))
        !endings
    end
  done

let iter engine id f =
  prepare engine id;
  iter_prepared engine id f

let cardinal engine id =
  prepare engine id;
  let ct = engine.ct in
  let fz = engine.frozen in
  let n = nstates engine in
  (* mixed-run counts per (node, p, q), memoised. *)
  let rec count id p q =
    match Hashtbl.find_opt engine.counts (id, p, q) with
    | Some c -> c
    | None ->
        let c =
          match Slp.frozen_node fz id with
          | Slp.Leaf ch ->
              let lm = leaf_pure engine ch in
              let total = ref 0 in
              Compiled.iter_set_arcs ct p (fun _ p' ->
                  if Bitmatrix.get lm p' q then incr total);
              !total
          | Slp.Pair (l, r) ->
              let pure_l = pure_m engine l and mixed_l = mixed_m engine l in
              let pure_r = pure_m engine r and mixed_r = mixed_m engine r in
              let total = ref 0 in
              for mid = 0 to n - 1 do
                if Bitmatrix.get mixed_l p mid && Bitmatrix.get pure_r mid q then
                  total := !total + count l p mid;
                if Bitmatrix.get pure_l p mid && Bitmatrix.get mixed_r mid q then
                  total := !total + count r mid q;
                if Bitmatrix.get mixed_l p mid && Bitmatrix.get mixed_r mid q then
                  total := !total + (count l p mid * count r mid q)
              done;
              !total
        in
        Hashtbl.add engine.counts (id, p, q) c;
        c
  in
  let init = Compiled.initial ct in
  let pure_root = pure_m engine id and mixed_root = mixed_m engine id in
  let total = ref 0 in
  for q = 0 to n - 1 do
    if Bitmatrix.get pure_root init q || Bitmatrix.get mixed_root init q then begin
      let endings = ref 0 in
      if Compiled.is_final_state ct q then incr endings;
      Compiled.iter_set_arcs ct q (fun _ q' ->
          if Compiled.is_final_state ct q' then incr endings);
      let runs =
        (if Bitmatrix.get pure_root init q then 1 else 0)
        + if Bitmatrix.get mixed_root init q then count id init q else 0
      in
      total := !total + (runs * !endings)
    end
  done;
  !total

let to_relation engine id =
  let r = ref (Span_relation.empty (vars engine)) in
  iter engine id (fun t -> r := Span_relation.add !r t);
  !r

(* ------------------------------------------------------------------ *)
(* Parallel batch evaluation                                           *)

(* Collect one prepared document under its own gauge.  The tuple cap
   counts distinct tuples (the relation deduplicates runs of a
   non-deterministic automaton), and is only probed when a cap is
   actually set — Span_relation.cardinal is not O(1). *)
let collect g engine id =
  let cap = (Limits.spec g).Limits.max_tuples <> max_int in
  let r = ref (Span_relation.empty (vars engine)) in
  iter_prepared engine id (fun t ->
      Limits.check g;
      r := Span_relation.add !r t;
      if cap then Limits.check_tuples g (Span_relation.cardinal !r));
  !r

let eval_all ?jobs ?(limits = Limits.none) engine roots =
  (* One sweep covers every root: shared nodes get their matrices
     exactly once.  The sweep itself runs under a single gauge — if it
     trips there are no matrices to enumerate from, so every slot
     degrades to that error. *)
  match
    let g = Limits.start limits in
    Array.iter (fun id -> prepare_gauge g engine id) roots
  with
  | exception e -> Array.map (fun _ -> Error e) roots
  | () -> Pool.map_result ?jobs (fun id -> collect (Limits.start limits) engine id) roots
