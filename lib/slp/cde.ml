type t =
  | Doc of string
  | Node of Slp.id
  | Concat of t * t
  | Extract of t * int * int
  | Delete of t * int * int
  | Insert of t * t * int
  | Copy of t * int * int * int

let rec eval db e =
  let store = Doc_db.store db in
  match e with
  | Doc name -> Doc_db.find db name
  | Node id -> id
  | Concat (a, b) -> Balance.concat store (eval db a) (eval db b)
  | Extract (a, i, j) ->
      let a = eval db a in
      let n = Slp.len store a in
      if i < 1 || j < i || j > n then
        invalid_arg
          (Printf.sprintf "Cde.eval: extract range [%d..%d] out of bounds (length %d)" i j n);
      Balance.extract store a i j
  | Delete (a, i, j) ->
      let a = eval db a in
      let n = Slp.len store a in
      if i < 1 || j < i || j > n then
        invalid_arg (Printf.sprintf "Cde.eval: delete range [%d..%d] out of bounds (length %d)" i j n);
      let left = if i = 1 then None else Some (Balance.extract store a 1 (i - 1)) in
      let right = if j = n then None else Some (Balance.extract store a (j + 1) n) in
      (match (left, right) with
      | None, None -> invalid_arg "Cde.eval: delete would produce the empty document"
      | Some x, None | None, Some x -> x
      | Some l, Some r -> Balance.concat store l r)
  | Insert (a, b, k) ->
      let a = eval db a and b = eval db b in
      let n = Slp.len store a in
      if k < 1 || k > n + 1 then
        invalid_arg (Printf.sprintf "Cde.eval: insert position %d out of bounds (length %d)" k n);
      let left, right = Balance.split store a (k - 1) in
      let mid =
        match left with None -> b | Some l -> Balance.concat store l b
      in
      (match right with None -> mid | Some r -> Balance.concat store mid r)
  | Copy (a, i, j, k) ->
      let a' = eval db a in
      let n = Slp.len store a' in
      if i < 1 || j < i || j > n then
        invalid_arg
          (Printf.sprintf "Cde.eval: copy range [%d..%d] out of bounds (length %d)" i j n);
      if k < 1 || k > n + 1 then
        invalid_arg
          (Printf.sprintf "Cde.eval: copy position %d out of bounds (length %d)" k n);
      let piece = Balance.extract store a' i j in
      eval db (Insert (Node a', Node piece, k))

let materialize db name e =
  let id = eval db e in
  Doc_db.add db name id;
  id

let rec size = function
  | Doc _ | Node _ -> 1
  | Concat (a, b) -> 1 + size a + size b
  | Extract (a, _, _) | Delete (a, _, _) -> 1 + size a
  | Insert (a, b, _) -> 1 + size a + size b
  | Copy (a, _, _, _) -> 1 + size a

let rec reference_eval lookup = function
  | Doc name -> lookup name
  | Node _ -> invalid_arg "Cde.reference_eval: explicit nodes have no string form"
  | Concat (a, b) -> reference_eval lookup a ^ reference_eval lookup b
  | Extract (a, i, j) ->
      let s = reference_eval lookup a in
      if i < 1 || j < i || j > String.length s then invalid_arg "Cde.reference_eval: extract range";
      String.sub s (i - 1) (j - i + 1)
  | Delete (a, i, j) ->
      let s = reference_eval lookup a in
      if i < 1 || j < i || j > String.length s then invalid_arg "Cde.reference_eval: delete range";
      String.sub s 0 (i - 1) ^ String.sub s j (String.length s - j)
  | Insert (a, b, k) ->
      let s = reference_eval lookup a and t = reference_eval lookup b in
      if k < 1 || k > String.length s + 1 then invalid_arg "Cde.reference_eval: insert position";
      String.sub s 0 (k - 1) ^ t ^ String.sub s (k - 1) (String.length s - k + 1)
  | Copy (a, i, j, k) ->
      let s = reference_eval lookup a in
      if i < 1 || j < i || j > String.length s then invalid_arg "Cde.reference_eval: copy range";
      let piece = String.sub s (i - 1) (j - i + 1) in
      String.sub s 0 (k - 1) ^ piece ^ String.sub s (k - 1) (String.length s - k + 1)

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Cde.parse: %s at offset %d" msg !pos) in
  let skip_ws () =
    while !pos < len && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n') do
      incr pos
    done
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let is_word c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  let word () =
    skip_ws ();
    let start = !pos in
    while !pos < len && is_word s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a document name or operation";
    String.sub s start (!pos - start)
  in
  let int_arg () =
    let w = word () in
    match int_of_string_opt w with
    | Some n -> n
    | None -> fail (Printf.sprintf "expected an integer, got %S" w)
  in
  let rec expr () =
    let name = word () in
    skip_ws ();
    if peek () <> Some '(' then Doc name
    else begin
      incr pos;
      let e =
        match name with
        | "concat" ->
            let a = expr () in
            expect ',';
            let b = expr () in
            Concat (a, b)
        | "extract" ->
            let a = expr () in
            expect ',';
            let i = int_arg () in
            expect ',';
            let j = int_arg () in
            Extract (a, i, j)
        | "delete" ->
            let a = expr () in
            expect ',';
            let i = int_arg () in
            expect ',';
            let j = int_arg () in
            Delete (a, i, j)
        | "insert" ->
            let a = expr () in
            expect ',';
            let b = expr () in
            expect ',';
            let k = int_arg () in
            Insert (a, b, k)
        | "copy" ->
            let a = expr () in
            expect ',';
            let i = int_arg () in
            expect ',';
            let j = int_arg () in
            expect ',';
            let k = int_arg () in
            Copy (a, i, j, k)
        | _ -> fail (Printf.sprintf "unknown operation %S" name)
      in
      expect ')';
      e
    end
  in
  let e = expr () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  e

let rec pp ppf = function
  | Doc name -> Format.pp_print_string ppf name
  | Node id -> Format.fprintf ppf "#%d" id
  | Concat (a, b) -> Format.fprintf ppf "concat(%a, %a)" pp a pp b
  | Extract (a, i, j) -> Format.fprintf ppf "extract(%a, %d, %d)" pp a i j
  | Delete (a, i, j) -> Format.fprintf ppf "delete(%a, %d, %d)" pp a i j
  | Insert (a, b, k) -> Format.fprintf ppf "insert(%a, %a, %d)" pp a pp b k
  | Copy (a, i, j, k) -> Format.fprintf ppf "copy(%a, %d, %d, %d)" pp a i j k
