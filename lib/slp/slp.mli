(** Straight-line programs (§4): hash-consed DAGs of binary
    concatenation nodes over character leaves.

    An SLP lives inside a {!store} (an arena of nodes).  Every node
    represents the document 𝔇(node) obtained by recursively
    concatenating its children (Figure 1 of the paper).  Nodes are
    hash-consed: structurally equal nodes are shared, which is where
    the compression comes from — in the best case a node of derived
    length 2^k needs only k nodes (see {!Builder.power}).

    All operations that "modify" a document actually add nodes; a
    store is persistent in the functional sense even though the arena
    is a mutable buffer. *)

type store

type id = int

type node = Leaf of char | Pair of id * id

(** [create_store ()] is an empty arena. *)
val create_store : unit -> store

(** [leaf store c] is the (unique) leaf node for character [c]. *)
val leaf : store -> char -> id

(** [pair store l r] is the (hash-consed) node deriving 𝔇(l)·𝔇(r). *)
val pair : store -> id -> id -> id

(** [node store id] inspects a node. *)
val node : store -> id -> node

(** [len store id] is |𝔇(id)|, maintained per node (O(1)). *)
val len : store -> id -> int

(** [order store id] is the order of the node (§4.1): leaves have
    order 1; an inner node has order 1 + max of its children — i.e.
    1 + the longest path to a leaf. *)
val order : store -> id -> int

(** [balance store id] is bal(id) = order(left) − order(right) for an
    inner node (§4.1); 0 for a leaf. *)
val balance : store -> id -> int

(** [store_size store] is the total number of nodes in the arena. *)
val store_size : store -> int

(** [reachable_size store id] is |S| for the sub-SLP rooted at [id]:
    the number of distinct reachable nodes. *)
val reachable_size : store -> id -> int

(** [char_at store id i] is 𝔇(id) at 1-based position [i], in time
    O(order id).
    @raise Invalid_argument if out of range. *)
val char_at : store -> id -> int -> char

(** [to_string store id] decompresses the whole document — O(|𝔇(id)|)
    time and space; the operation every compressed-evaluation
    result of §4 is measured against. *)
val to_string : store -> id -> string

(** [extract_string store id i j] is the factor 𝔇(id)[i..j−1] (1-based,
    half-open like spans), without decompressing the rest. *)
val extract_string : store -> id -> int -> int -> string

(** [of_string store s] is a left-comb SLP for [s] with no sharing —
    the degenerate baseline; see {!Builder} for the real builders.
    @raise Invalid_argument on the empty string (SLPs derive non-empty
    documents). *)
val of_string : store -> string -> id

(** [iter_reachable store id f] applies [f] to every reachable node id,
    children before parents (a topological order). *)
val iter_reachable : store -> id -> (id -> unit) -> unit

(** {1 Frozen snapshots}

    A store is a mutable arena, so concurrent readers race against
    writers (and against the cell buffer's reallocation).  A {!frozen}
    view is an immutable snapshot of every node present at {!freeze}
    time: safe to share across OCaml 5 [Domain]s by construction.
    Node ids are stable — an id valid in the store is valid in every
    later snapshot — and ascending id order is a valid topological
    order (children are always interned before parents).

    A frozen view has two interchangeable representations behind the
    same accessors: the heap-array snapshot {!freeze} builds, and a
    {e flat} view over [Bigarray] int columns ({!frozen_of_columns})
    that the arena store ([Spanner_store.Arena], format [SLPAR1]) lays
    directly over an mmapped file — zero deserialization, shared
    read-only across domains {e and} processes.  Flat columns may come
    from an untrusted file, so flat accessors validate what they touch
    (O(1) per access) and raise a typed
    [Spanner_util.Limits.Spanner_error] ([Corrupt_input]) instead of
    ever reading out of bounds. *)

type frozen

(** Bigarray int columns backing a flat frozen view. *)
type int_array = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [freeze store] snapshots all [store_size store] nodes.  O(store
    size); nodes created later are not visible in the snapshot. *)
val freeze : store -> frozen

(** [frozen_of_columns ~count ~left ~right ~lens] is a flat frozen
    view over struct-of-arrays columns, typically slices of one
    mmapped arena.  Node [id < count] is a leaf for byte [b] when
    [left.{id} = -(1 + b)], else the pair [(left.{id}, right.{id})];
    [lens.{id}] is its derived length.  The columns are {e not}
    copied or validated here — construction is O(1); accessors
    validate per node.
    @raise Invalid_argument when a column is shorter than [count]. *)
val frozen_of_columns :
  count:int -> left:int_array -> right:int_array -> lens:int_array -> frozen

(** [frozen_bytes fz] estimates the memory behind the view: mapped
    column bytes for a flat view, heap words for an array snapshot. *)
val frozen_bytes : frozen -> int

(** [frozen_size fz] is the number of nodes in the snapshot. *)
val frozen_size : frozen -> int

(** [frozen_node fz id] inspects a node of the snapshot (O(1), no
    lock).
    @raise Invalid_argument if [id] is outside the snapshot.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) when a
    flat view's columns are malformed at [id] (leaf byte out of range,
    child not preceding its parent). *)
val frozen_node : frozen -> id -> node

(** [frozen_len fz id] is |𝔇(id)| per the snapshot.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on a
    flat view holding a non-positive length. *)
val frozen_len : frozen -> id -> int

(** [frozen_to_string ?gauge fz id] decompresses from the snapshot,
    charging one step of [gauge] per emitted byte — the decompression
    itself is metered, so an over-budget document fails before the
    bytes pile up.  Iterative: survives SLPs of any depth.
    @raise Spanner_util.Limits.Spanner_error when the gauge trips. *)
val frozen_to_string : ?gauge:Spanner_util.Limits.gauge -> frozen -> id -> string

(** [on_new_node store f] registers [f] to be called with the id of
    every node subsequently created in [store] (hash-consing hits do
    not create nodes and do not fire).  Used by per-node caches
    ({!Spanner_incr.Incr}) to track which nodes an edit created and to
    drop any stale entry under a fresh id. *)
val on_new_node : store -> (id -> unit) -> unit

(** [is_c_shallow store ~c id] tests order(A) ≤ c·log₂|𝔇(A)| for the
    root and every reachable inner node of derived length ≥ 2
    (§4.1). *)
val is_c_shallow : store -> c:float -> id -> bool

(** [is_strongly_balanced store id] tests bal ∈ {−1, 0, 1} for [id]
    and all descendants (§4.1). *)
val is_strongly_balanced : store -> id -> bool
