module Limits = Spanner_util.Limits

let magic = "SLPDB1\n"

let corrupt msg = Limits.corrupt ~what:"SLPDB" msg
let corruptf fmt = Printf.ksprintf corrupt fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

(* unsigned LEB128 *)
let write_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Serialize: negative varint";
  go n

let write_buffer db buf =
  Buffer.add_string buf magic;
  let store = Doc_db.store db in
  (* topological numbering of reachable nodes, children first *)
  let file_id = Hashtbl.create 256 in
  let order = ref [] in
  let count = ref 0 in
  List.iter
    (fun name ->
      Slp.iter_reachable store (Doc_db.find db name) (fun id ->
          if not (Hashtbl.mem file_id id) then begin
            Hashtbl.add file_id id !count;
            incr count;
            order := id :: !order
          end))
    (Doc_db.names db);
  let nodes = List.rev !order in
  write_varint buf !count;
  List.iter
    (fun id ->
      match Slp.node store id with
      | Slp.Leaf c ->
          Buffer.add_char buf '\000';
          Buffer.add_char buf c
      | Slp.Pair (l, r) ->
          Buffer.add_char buf '\001';
          write_varint buf (Hashtbl.find file_id l);
          write_varint buf (Hashtbl.find file_id r))
    nodes;
  let names = Doc_db.names db in
  write_varint buf (List.length names);
  List.iter
    (fun name ->
      write_varint buf (String.length name);
      Buffer.add_string buf name;
      write_varint buf (Hashtbl.find file_id (Doc_db.find db name)))
    names

let write_string db =
  let buf = Buffer.create 4096 in
  write_buffer db buf;
  Buffer.contents buf

let write_channel db oc = output_string oc (write_string db)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

(* The reader is positional over an in-memory string, so every size
   field can be validated against the number of bytes actually left
   before anything is allocated: hostile inputs fail with a typed
   [Corrupt_input] in O(1) space instead of a giant [Array.make]. *)

type reader = { data : string; mutable pos : int }

let remaining r = String.length r.data - r.pos

let byte r =
  if r.pos >= String.length r.data then corrupt "truncated file";
  let b = Char.code (String.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  b

let read_varint r =
  let rec go shift acc =
    (* 9 groups of 7 bits cover the 62 value bits of an OCaml int;
       a 10th continuation byte cannot be canonical. *)
    if shift >= 63 then corrupt "varint too long";
    let b = byte r in
    let chunk = b land 0x7f in
    if chunk > max_int lsr shift then corrupt "varint overflows";
    let acc = acc lor (chunk lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else if chunk = 0 && shift > 0 then corrupt "non-canonical varint"
    else acc
  in
  go 0 0

let read_string data =
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    corrupt "bad magic (not an SLPDB file)";
  let r = { data; pos = mlen } in
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  let count = read_varint r in
  (* every node costs at least 2 bytes (tag + payload) *)
  if count > remaining r / 2 then
    corruptf "node count %d exceeds the %d bytes left" count (remaining r);
  let ids = Array.make (max count 1) (-1) in
  for i = 0 to count - 1 do
    match byte r with
    | 0 -> ids.(i) <- Slp.leaf store (Char.chr (byte r))
    | 1 ->
        let l = read_varint r in
        let rt = read_varint r in
        if l >= i || rt >= i then corrupt "node references a later node";
        ids.(i) <- Slp.pair store ids.(l) ids.(rt)
    | _ -> corrupt "bad node tag"
  done;
  let ndocs = read_varint r in
  (* every document entry costs at least 2 bytes (length + root) *)
  if ndocs > remaining r / 2 then
    corruptf "document count %d exceeds the %d bytes left" ndocs (remaining r);
  for _ = 1 to ndocs do
    let len = read_varint r in
    if len > remaining r then corruptf "document name length %d exceeds the %d bytes left" len (remaining r);
    let name = String.sub data r.pos len in
    r.pos <- r.pos + len;
    let root = read_varint r in
    if root >= count then corrupt "document root out of range";
    if Doc_db.find_opt db name <> None then corruptf "duplicate document name %S" name;
    Doc_db.add db name ids.(root)
  done;
  if remaining r <> 0 then corruptf "%d trailing bytes after the document table" (remaining r);
  db

let read_channel ic = read_string (In_channel.input_all ic)

let write_file db path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel db oc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
