module Limits = Spanner_util.Limits

let magic = "SLPDB1\n"

let corrupt msg = Limits.corrupt ~what:"SLPDB" msg
let corruptf fmt = Printf.ksprintf corrupt fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

(* unsigned LEB128 *)
let write_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Serialize: negative varint";
  go n

let write_buffer db buf =
  Buffer.add_string buf magic;
  let store = Doc_db.store db in
  (* topological numbering of reachable nodes, children first *)
  let file_id = Hashtbl.create 256 in
  let order = ref [] in
  let count = ref 0 in
  List.iter
    (fun name ->
      Slp.iter_reachable store (Doc_db.find db name) (fun id ->
          if not (Hashtbl.mem file_id id) then begin
            Hashtbl.add file_id id !count;
            incr count;
            order := id :: !order
          end))
    (Doc_db.names db);
  let nodes = List.rev !order in
  write_varint buf !count;
  List.iter
    (fun id ->
      match Slp.node store id with
      | Slp.Leaf c ->
          Buffer.add_char buf '\000';
          Buffer.add_char buf c
      | Slp.Pair (l, r) ->
          Buffer.add_char buf '\001';
          write_varint buf (Hashtbl.find file_id l);
          write_varint buf (Hashtbl.find file_id r))
    nodes;
  let names = Doc_db.names db in
  write_varint buf (List.length names);
  List.iter
    (fun name ->
      write_varint buf (String.length name);
      Buffer.add_string buf name;
      write_varint buf (Hashtbl.find file_id (Doc_db.find db name)))
    names

let write_string db =
  let buf = Buffer.create 4096 in
  write_buffer db buf;
  Buffer.contents buf

let write_channel db oc = output_string oc (write_string db)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

(* The reader is positional over an abstract byte source pulled
   through one reused buffer, so every size field can be validated
   against the number of bytes actually left before anything is
   allocated: hostile inputs fail with a typed [Corrupt_input] in
   O(1) space instead of a giant [Array.make], and a channel is
   parsed in O(buffer) extra memory instead of being slurped into a
   second whole-file string.

   [total] is the byte count of the source when the source can tell
   (a string, a seekable channel); on a pipe it is unknown and the
   count/length sanity checks degrade gracefully to plain truncation
   errors — still typed, never a huge allocation driven by a count
   field alone (node and document loops allocate per entry read). *)

type reader = {
  refill : bytes -> int -> int;  (* fill up to [len] bytes, 0 = eof *)
  buf : bytes;
  mutable lo : int;  (* next unread byte in [buf] *)
  mutable hi : int;  (* end of valid bytes in [buf] *)
  mutable consumed : int;  (* bytes handed out before buf.[lo] *)
  total : int option;  (* source size, when knowable *)
}

let reader_of_string data =
  {
    refill = (fun _ _ -> 0);
    buf = Bytes.unsafe_of_string data;
    lo = 0;
    hi = String.length data;
    consumed = 0;
    total = Some (String.length data);
  }

let chunk = 65536

let reader_of_channel ic =
  let total =
    (* [In_channel.length] works on regular files; on a pipe it fails
       or reports a useless size — treat anything non-positive as
       unknown rather than rejecting valid data against it *)
    match In_channel.length ic with
    | n ->
        let left = Int64.sub n (In_channel.pos ic) in
        if Int64.compare left 0L > 0 && Int64.compare left (Int64.of_int max_int) <= 0
        then Some (Int64.to_int left)
        else None
    | exception Sys_error _ -> None
  in
  {
    refill = (fun b len -> In_channel.input ic b 0 len);
    buf = Bytes.create chunk;
    lo = 0;
    hi = 0;
    consumed = 0;
    total;
  }

(* bytes not yet fetched from the source *)
let unfetched r =
  match r.total with Some t -> t - (r.consumed + r.hi) | None -> max_int

(* bytes left to parse, including what is already buffered *)
let left r =
  let u = unfetched r in
  if u = max_int then max_int else (r.hi - r.lo) + u

let fill r =
  if r.lo >= r.hi then begin
    r.consumed <- r.consumed + r.hi;
    let n = r.refill r.buf (Bytes.length r.buf) in
    r.lo <- 0;
    r.hi <- n;
    n > 0
  end
  else true

let byte r =
  if not (fill r) then corrupt "truncated file";
  let b = Char.code (Bytes.unsafe_get r.buf r.lo) in
  r.lo <- r.lo + 1;
  b

let read_bytes r len =
  if len <= r.hi - r.lo then begin
    (* fast path: already buffered *)
    let s = Bytes.sub_string r.buf r.lo len in
    r.lo <- r.lo + len;
    s
  end
  else begin
    (* accumulate through a Buffer so a hostile length field on an
       unsized source cannot force a giant up-front allocation —
       memory grows only with bytes actually delivered *)
    let out = Buffer.create (min len (Bytes.length r.buf)) in
    let filled = ref 0 in
    while !filled < len do
      if not (fill r) then corrupt "truncated file";
      let take = min (len - !filled) (r.hi - r.lo) in
      Buffer.add_subbytes out r.buf r.lo take;
      r.lo <- r.lo + take;
      filled := !filled + take
    done;
    Buffer.contents out
  end

let at_eof r = not (fill r)

let read_varint r =
  let rec go shift acc =
    (* 9 groups of 7 bits cover the 62 value bits of an OCaml int;
       a 10th continuation byte cannot be canonical. *)
    if shift >= 63 then corrupt "varint too long";
    let b = byte r in
    let chunk = b land 0x7f in
    if chunk > max_int lsr shift then corrupt "varint overflows";
    let acc = acc lor (chunk lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else if chunk = 0 && shift > 0 then corrupt "non-canonical varint"
    else acc
  in
  go 0 0

let read_reader r =
  let mlen = String.length magic in
  (match read_bytes r mlen with
  | m when m <> magic -> corrupt "bad magic (not an SLPDB file)"
  | _ -> ()
  | exception Limits.Spanner_error _ -> corrupt "bad magic (not an SLPDB file)");
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  let count = read_varint r in
  (* every node costs at least 2 bytes (tag + payload) *)
  if count > left r / 2 then
    corruptf "node count %d exceeds the %d bytes left" count (left r);
  let ids = Array.make (max count 1) (-1) in
  for i = 0 to count - 1 do
    match byte r with
    | 0 -> ids.(i) <- Slp.leaf store (Char.chr (byte r))
    | 1 ->
        let l = read_varint r in
        let rt = read_varint r in
        if l >= i || rt >= i then corrupt "node references a later node";
        ids.(i) <- Slp.pair store ids.(l) ids.(rt)
    | _ -> corrupt "bad node tag"
  done;
  let ndocs = read_varint r in
  (* every document entry costs at least 2 bytes (length + root) *)
  if ndocs > left r / 2 then
    corruptf "document count %d exceeds the %d bytes left" ndocs (left r);
  for _ = 1 to ndocs do
    let len = read_varint r in
    if len > left r then corruptf "document name length %d exceeds the %d bytes left" len (left r);
    let name = read_bytes r len in
    let root = read_varint r in
    if root >= count then corrupt "document root out of range";
    if Doc_db.find_opt db name <> None then corruptf "duplicate document name %S" name;
    Doc_db.add db name ids.(root)
  done;
  if not (at_eof r) then corruptf "%d trailing bytes after the document table" (left r);
  db

let read_string data = read_reader (reader_of_string data)

let read_channel ic = read_reader (reader_of_channel ic)

let write_file db path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel db oc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
