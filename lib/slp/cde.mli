(** Complex document editing (§4.3, [40]).

    CDE-expressions combine stored documents with the basic operations

    {v
      concat(D, D')      extract(D, i, j)     delete(D, i, j)
      insert(D, D', k)   copy(D, i, j, k)
    v}

    ([i..j] inclusive, 1-based; [insert] places D' so that it starts at
    position [k] of D).  Evaluating a CDE-expression over a strongly
    balanced SLP creates only O(|φ| · log d) new nodes and keeps strong
    balance — the paper's headline update bound — because every basic
    operation reduces to the AVL {!Balance.concat}/{!Balance.split}
    primitives. *)

type t =
  | Doc of string  (** a named document of the database *)
  | Node of Slp.id  (** an explicit node *)
  | Concat of t * t
  | Extract of t * int * int
  | Delete of t * int * int
  | Insert of t * t * int
  | Copy of t * int * int * int

(** [eval db e] evaluates [e] over the database, returning the node of
    the resulting document.  The node is *not* added to the database
    (the "query once, then drop the new nodes" mode at the end of
    §4.3); use {!materialize} to keep it.
    @raise Invalid_argument on out-of-range positions or an empty
    result (SLPs derive non-empty documents), [Not_found] on unknown
    document names. *)
val eval : Doc_db.t -> t -> Slp.id

(** [materialize db name e] evaluates and designates the result as
    document [name] — the update task "modify S so that it describes
    DDB ∪ {eval(φ)}". *)
val materialize : Doc_db.t -> string -> t -> Slp.id

(** [size e] is |φ| — the number of operations plus leaves. *)
val size : t -> int

(** [reference_eval lookup e] evaluates [e] over plain strings ([lookup]
    resolves names) — the O(d)-per-operation baseline the benchmarks
    compare against, and the oracle for correctness tests. *)
val reference_eval : (string -> string) -> t -> string

(** [parse s] reads a CDE-expression in the concrete syntax printed by
    {!pp}: a bare word is a document name, and the five operations are
    written [concat(e, e)], [extract(e, i, j)], [delete(e, i, j)],
    [insert(e, e, k)] and [copy(e, i, j, k)].  Explicit [Node] ids
    have no written form.
    @raise Invalid_argument (with the offset) on a syntax error. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit
