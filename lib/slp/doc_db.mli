(** Document databases (§4): a set of designated nodes of a shared SLP,
    each representing one stored document (Figure 1).

    The database owns the store; all documents share its nodes, so a
    factor occurring in several documents is represented once. *)

type t

(** [create ()] is an empty database with a fresh store. *)
val create : unit -> t

(** [store db] is the underlying node store. *)
val store : t -> Slp.store

(** [add db name id] designates [id] as document [name] (replacing any
    previous designation of [name]). *)
val add : t -> string -> Slp.id -> unit

(** [add_string db name s] compresses [s] (LZ78 + strong balancing)
    and adds it. *)
val add_string : t -> string -> string -> Slp.id

(** [find db name] is the node of document [name].
    @raise Not_found if absent. *)
val find : t -> string -> Slp.id

(** [find_opt db name] is the optional variant. *)
val find_opt : t -> string -> Slp.id option

(** [names db] is the document names in insertion order. *)
val names : t -> string list

(** [total_len db] is Σ |D_i| — the uncompressed size. *)
val total_len : t -> int

(** [compressed_size db] is the number of distinct nodes reachable
    from any designated document — the |S| of the shared SLP. *)
val compressed_size : t -> int

(** [freeze db] is an immutable snapshot of the shared store
    ({!Slp.freeze}): safe for concurrent reads across domains. *)
val freeze : t -> Slp.frozen

(** [eval_all ?jobs ?limits ?engine db ct] evaluates the compiled
    spanner [ct] on every document of the database, in insertion
    order: the one-spanner/many-documents workload of §4.

    With [~engine:`Compressed] (the default), evaluation stays in the
    compressed domain ({!Slp_spanner}): one bottom-up matrix sweep
    over the shared SLP computes each distinct node exactly once —
    O(distinct compressed nodes), never O(Σ|Dᵢ|) — then per-document
    enumeration fans out over [jobs] domains against a frozen store
    snapshot.  With [~engine:`Decompress] (the baseline the §4
    experiments compare against), each document is decompressed from
    a frozen snapshot and evaluated uncompressed, in parallel; its
    decompression is charged to the same per-document gauge as its
    evaluation.

    The result list is deterministic and independent of [jobs], and
    both engines produce the same relations.  Partial-failure
    semantics: each document is metered by its own gauge started from
    [limits], and a document that trips a budget (or fails for any
    other reason) degrades to its [Error] slot while every healthy
    document still completes.  (Under [`Compressed], a budget trip
    during the shared sweep has no healthy documents to salvage:
    every slot reports the error.) *)
val eval_all :
  ?jobs:int ->
  ?limits:Spanner_util.Limits.t ->
  ?engine:[ `Compressed | `Decompress ] ->
  t ->
  Spanner_core.Compiled.t ->
  (string * (Spanner_core.Span_relation.t, exn) result) list
