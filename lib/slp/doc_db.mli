(** Document databases (§4): a set of designated nodes of a shared SLP,
    each representing one stored document (Figure 1).

    The database owns the store; all documents share its nodes, so a
    factor occurring in several documents is represented once. *)

type t

(** [create ()] is an empty database with a fresh store. *)
val create : unit -> t

(** [store db] is the underlying node store. *)
val store : t -> Slp.store

(** [add db name id] designates [id] as document [name] (replacing any
    previous designation of [name]). *)
val add : t -> string -> Slp.id -> unit

(** [add_string db name s] compresses [s] (LZ78 + strong balancing)
    and adds it. *)
val add_string : t -> string -> string -> Slp.id

(** [find db name] is the node of document [name].
    @raise Not_found if absent. *)
val find : t -> string -> Slp.id

(** [find_opt db name] is the optional variant. *)
val find_opt : t -> string -> Slp.id option

(** [names db] is the document names in insertion order. *)
val names : t -> string list

(** [total_len db] is Σ |D_i| — the uncompressed size. *)
val total_len : t -> int

(** [compressed_size db] is the number of distinct nodes reachable
    from any designated document — the |S| of the shared SLP. *)
val compressed_size : t -> int

(** [eval_all ?jobs ?limits db ct] evaluates the compiled spanner [ct]
    on every document of the database, in insertion order: the
    one-spanner/many-documents workload of §4.  Documents are
    decompressed sequentially (the store is shared and mutable), then
    evaluated in parallel by [jobs] domains
    ({!Spanner_core.Compiled.eval_all_result}); the result list is
    deterministic and independent of [jobs].  Partial-failure
    semantics: each document is metered by its own gauge started from
    [limits], and a document that trips a budget (or fails for any
    other reason) degrades to its [Error] slot while every healthy
    document still completes. *)
val eval_all :
  ?jobs:int ->
  ?limits:Spanner_util.Limits.t ->
  t ->
  Spanner_core.Compiled.t ->
  (string * (Spanner_core.Span_relation.t, exn) result) list
