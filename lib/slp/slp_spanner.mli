(** Regular-spanner evaluation over SLP-compressed documents
    (§4.2, [39]).

    The engine combines the two ideas the paper describes:

    - {b matrices along the DAG}: for every SLP node [A], boolean
      matrices over the states of the compiled automaton record which
      state pairs are connected by reading 𝔇(A) — one matrix for
      marker-free runs ([Pure_A]) and one for runs that place at least
      one marker ([Mixed_A]), composed as [Pure_AB = Pure_A·Pure_B]
      and [Mixed_AB = Mixed_A·Full_B ∪ Pure_A·Mixed_B].
      Preprocessing is therefore O(|S|) matrix products — linear in
      the {e compressed} size, never in |𝔇(A)|.

    - {b enumeration by partial decompression}: a result tuple is
      produced by descending only into the nodes where its markers
      lie; marker-free stretches are skipped through the matrices.
      On a c-shallow SLP each of the ≤ 2k+1 descents costs O(log |D|)
      — the paper's O(log |D|) delay (§4.2).

    The engine is built on {!Spanner_core.Compiled}'s dense tables:
    node matrices live in node-indexed arrays, leaf matrices are
    shared per {e byte class} (bytes the spanner never separates share
    one matrix), and the bottom-up sweep is iterative, so arbitrarily
    deep SLPs cannot overflow the stack.  Matrices are memoised per
    node: documents sharing nodes share preprocessing, and nodes
    created by CDE updates (§4.3) pay only for themselves.

    With a deterministic automaton ({!create} determinises) runs are
    bijective with result tuples, so enumeration is duplicate-free.
    {!of_compiled} accepts any compiled automaton; on a
    non-deterministic one, {!iter} may repeat tuples (and {!cardinal}
    counts runs) — {!to_relation} and {!eval_all} deduplicate and are
    exact either way.

    Concurrency: {!prepare} mutates the engine and must stay on one
    domain, but enumeration over prepared nodes only reads a frozen
    store snapshot ({!Slp.freeze}) and filled matrix slots —
    {!eval_all} exploits this to sweep once and enumerate all
    documents in parallel. *)

open Spanner_core

type engine

(** [create e store] builds an engine for the spanner ⟦e⟧ (the
    automaton is determinised internally unless it already is). *)
val create : Evset.t -> Slp.store -> engine

(** [of_compiled ct store] builds an engine on an existing compiled
    automaton, sharing its tables (no recompilation).  If [ct] is not
    deterministic, enumeration may visit a tuple once per run — use
    relation-level entry points ({!to_relation}, {!eval_all}), which
    deduplicate. *)
val of_compiled : Compiled.t -> Slp.store -> engine

(** [of_frozen ct fz] builds an engine directly over a frozen snapshot
    with no backing store — the entry point for mmapped arena views
    ({!Slp.frozen_of_columns}), where there is no [Slp.store] at all.
    The snapshot is never refreshed; ids beyond [Slp.frozen_size fz]
    do not exist.  Same enumeration caveats as {!of_compiled}. *)
val of_frozen : Compiled.t -> Slp.frozen -> engine

(** [compiled engine] is the underlying compiled automaton. *)
val compiled : engine -> Compiled.t

(** [vars engine] is the spanner's variable set. *)
val vars : engine -> Variable.Set.t

(** [prepare engine id] forces the matrices of every node reachable
    from [id] — the preprocessing phase, O(number of new nodes)
    boolean matrix products, by iterative bottom-up sweep. *)
val prepare : engine -> Slp.id -> unit

(** [prepare_gauge g engine id] is {!prepare} metered by the caller's
    gauge: each node's matrix products charge [Compiled.states] steps.
    @raise Spanner_util.Limits.Spanner_error when the gauge trips
    (already-filled slots stay valid; the sweep is resumable). *)
val prepare_gauge : Spanner_util.Limits.gauge -> engine -> Slp.id -> unit

(** [iter engine id f] enumerates ⟦e⟧(𝔇(id)), calling [f] once per
    accepting run (once per tuple when the automaton is
    deterministic — see {!create} vs {!of_compiled}). *)
val iter : engine -> Slp.id -> (Span_tuple.t -> unit) -> unit

(** [iter_prepared engine id f] is {!iter} assuming the matrices of
    every node reachable from [id] are already forced ({!prepare} /
    {!prepare_gauge}): it only {e reads} filled slots and the frozen
    store snapshot, so concurrent calls on different roots are safe —
    and a streaming consumer ({!Spanner_engine.Cursor.of_slp}) can pull
    tuples lazily without re-entering the mutating sweep.  Behaviour
    is unspecified if [id] was never prepared. *)
val iter_prepared : engine -> Slp.id -> (Span_tuple.t -> unit) -> unit

(** [nondeterministic engine] is [true] when the compiled automaton is
    not deterministic — i.e. when enumeration ({!iter}, {!cursor}) may
    visit a tuple once per accepting run and a streaming consumer that
    wants set semantics must deduplicate.  Computed once at engine
    construction, so per-cursor setup does not pay the evset scan. *)
val nondeterministic : engine -> bool

(** {2 Pull enumeration}

    The native constant-delay producer (ROADMAP item 3).  A cursor is
    the suspended state of the run enumeration — an explicit frame
    stack over the parse tree plus the pick list of the run under
    construction — and each {!cursor_next} resumes it until the next
    run completes.  Compared to driving {!iter_prepared} through an
    effect handler, there is no fiber, no handler frame, and no
    per-pull context switch; delay between tuples is bounded by the
    descent work alone, which the per-node transposed matrices reduce
    to byte-parallel candidate scans ({!Spanner_util.Bitset.first_common_from}).

    Tuples come out in {e exactly} the order {!iter_prepared} emits
    them (same runs, same order), so the two are interchangeable
    downstream.  A cursor only reads prepared matrix slots and the
    frozen snapshot captured at creation: cursors on different roots
    may run on different domains, but creation requires the root to be
    prepared first. *)

type cursor

(** [cursor engine id] opens a pull cursor over ⟦e⟧(𝔇(id)).  O(1) in
    the document; the root must already be prepared.
    @raise Invalid_argument if [id] was never prepared. *)
val cursor : engine -> Slp.id -> cursor

(** [cursor_next c] is the next accepting run's tuple, or [None] when
    exhausted.  Duplicate-free iff the automaton is deterministic
    ({!nondeterministic}). *)
val cursor_next : cursor -> Span_tuple.t option

(** [cardinal engine id] counts accepting runs by dynamic programming
    over run counts — no enumeration, O(|S|·|Q|²) after preparation.
    Equals |⟦e⟧(𝔇(id))| when the automaton is deterministic. *)
val cardinal : engine -> Slp.id -> int

(** [to_relation engine id] materialises the result. *)
val to_relation : engine -> Slp.id -> Span_relation.t

(** [matrices_computed engine] is the number of memoised node
    matrices (preprocessing bookkeeping for the experiments). *)
val matrices_computed : engine -> int

(** [eval_all ?jobs ?limits engine roots] evaluates every root of
    [roots] — the one-spanner/many-documents workload of §4 — in two
    phases: one bottom-up sweep computes the matrices of all roots
    (shared nodes are computed exactly once, under a single gauge
    started from [limits]; if that sweep trips, every slot holds the
    error), then per-document enumeration fans out across [jobs]
    domains ({!Spanner_util.Pool}), each document metered by its own
    gauge with partial-failure semantics.  Results are in input order
    and independent of [jobs]. *)
val eval_all :
  ?jobs:int ->
  ?limits:Spanner_util.Limits.t ->
  engine ->
  Slp.id array ->
  (Span_relation.t, exn) result array
