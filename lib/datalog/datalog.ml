open Spanner_core
module Strhash = Spanner_util.Strhash
module Limits = Spanner_util.Limits

type literal =
  | Spanner of Evset.t * (Variable.t * string) list
  | Idb of string * string list
  | Content_eq of string * string
  | Adjacent of string * string

type rule = { head : string * string list; body : literal list }

type program = { rules : rule list; arities : (string, int) Hashtbl.t }

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let make rules =
  let arities = Hashtbl.create 8 in
  let record_arity name arity where =
    match Hashtbl.find_opt arities name with
    | Some a when a <> arity ->
        invalid_arg
          (Printf.sprintf "Datalog.make: predicate %s used with arities %d and %d (%s)" name a
             arity where)
    | Some _ -> ()
    | None -> Hashtbl.add arities name arity
  in
  List.iteri
    (fun i { head = hname, hvars; body } ->
      let where = Printf.sprintf "rule %d" i in
      record_arity hname (List.length hvars) where;
      (* left-to-right binding discipline *)
      let bound = Hashtbl.create 8 in
      let bind v = Hashtbl.replace bound v () in
      let check_bound v what =
        if not (Hashtbl.mem bound v) then
          invalid_arg
            (Printf.sprintf
               "Datalog.make: %s: variable %s of %s is not bound by an earlier positive atom"
               where v what)
      in
      List.iter
        (fun literal ->
          match literal with
          | Spanner (_, bindings) -> List.iter (fun (_, r) -> bind r) bindings
          | Idb (name, vars) ->
              record_arity name (List.length vars) where;
              List.iter bind vars
          | Content_eq (a, b) ->
              check_bound a "content_eq";
              check_bound b "content_eq"
          | Adjacent (a, b) ->
              check_bound a "adjacent";
              check_bound b "adjacent")
        body;
      List.iter
        (fun v ->
          if not (Hashtbl.mem bound v) then
            invalid_arg
              (Printf.sprintf "Datalog.make: %s: head variable %s is not range-restricted" where
                 v))
        hvars)
    rules;
  { rules; arities }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

module Row_set = Set.Make (struct
  type t = Span.t array

  let compare = Stdlib.compare
end)

type result = {
  tables : (string, Row_set.t) Hashtbl.t;
  rounds : int;
}



let lookup env v = List.assoc_opt v env

let extend env v span =
  match lookup env v with
  | Some s -> if Span.equal s span then Some env else None
  | None -> Some ((v, span) :: env)

let run ?limits p doc =
  let g = Limits.start (Option.value ~default:Limits.none limits) in
  let hash = Strhash.make doc in
  (* Materialise each distinct spanner atom once (physical identity:
     the same automaton value shared between rules is shared here). *)
  let spanner_cache : (Evset.t * Span_relation.t) list ref = ref [] in
  let spanner_rows e =
    match List.find_opt (fun (e', _) -> e' == e) !spanner_cache with
    | Some (_, r) -> r
    | None ->
        let r = Enumerate.to_relation ?limits e doc in
        spanner_cache := (e, r) :: !spanner_cache;
        r
  in
  let tables : (string, Row_set.t) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter (fun name _ -> Hashtbl.replace tables name Row_set.empty) p.arities;
  let deltas : (string, Row_set.t) Hashtbl.t = Hashtbl.create 8 in
  let table name = Option.value ~default:Row_set.empty (Hashtbl.find_opt tables name) in
  let delta name = Option.value ~default:Row_set.empty (Hashtbl.find_opt deltas name) in
  let content_eq a b =
    Strhash.equal_span hash
      ~a:(Span.left a - 1, Span.right a - 1)
      ~b:(Span.left b - 1, Span.right b - 1)
  in
  (* Evaluate a rule body left to right.  [use_delta_at] forces the
     [k]-th IDB literal to range over the last round's delta (semi-naïve
     evaluation); [-1] means all IDB literals use the full tables. *)
  let eval_rule { head = hname, hvars; body } use_delta_at emit =
    let rec go idb_index literals env =
      (* one unit of fuel per binding step of the fixpoint *)
      Limits.check g;
      match literals with
      | [] ->
          let row =
            Array.of_list
              (List.map
                 (fun v ->
                   match lookup env v with
                   | Some s -> s
                   | None -> assert false (* range restriction *))
                 hvars)
          in
          emit hname row
      | Spanner (e, bindings) :: rest ->
          List.iter
            (fun tuple ->
              let rec bind_all env = function
                | [] -> Some env
                | (sv, rv) :: more -> (
                    match Span_tuple.find tuple sv with
                    | None -> None
                    | Some span -> (
                        match extend env rv span with
                        | None -> None
                        | Some env -> bind_all env more))
              in
              match bind_all env bindings with
              | Some env -> go idb_index rest env
              | None -> ())
            (Span_relation.tuples (spanner_rows e))
      | Idb (name, vars) :: rest ->
          let source = if idb_index = use_delta_at then delta name else table name in
          Row_set.iter
            (fun row ->
              let rec bind_all env i = function
                | [] -> Some env
                | v :: more -> (
                    match extend env v row.(i) with
                    | None -> None
                    | Some env -> bind_all env (i + 1) more)
              in
              match bind_all env 0 vars with
              | Some env -> go (idb_index + 1) rest env
              | None -> ())
            source;
          (* only descend through the recursion above *)
          ()
      | Content_eq (a, b) :: rest -> (
          match (lookup env a, lookup env b) with
          | Some sa, Some sb when content_eq sa sb -> go idb_index rest env
          | _ -> ())
      | Adjacent (a, b) :: rest -> (
          match (lookup env a, lookup env b) with
          | Some sa, Some sb when Span.right sa = Span.left sb -> go idb_index rest env
          | _ -> ())
    in
    go 0 body []
  in
  let idb_literal_count body =
    List.length (List.filter (function Idb _ -> true | _ -> false) body)
  in
  (* Round 0: rules evaluated with empty IDB tables derive the base
     facts (rules whose bodies have IDB literals derive nothing yet). *)
  let fresh : (string, Row_set.t) Hashtbl.t = Hashtbl.create 8 in
  let derived = ref 0 in
  let emit name row =
    let current = Option.value ~default:Row_set.empty (Hashtbl.find_opt fresh name) in
    if not (Row_set.mem row (table name)) then begin
      if not (Row_set.mem row current) then begin
        incr derived;
        (* every genuinely new fact counts against the tuple cap *)
        Limits.check_tuples g !derived
      end;
      Hashtbl.replace fresh name (Row_set.add row current)
    end
  in
  List.iter (fun rule -> eval_rule rule (-1) emit) p.rules;
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    (* merge fresh into tables; fresh becomes the delta *)
    Hashtbl.reset deltas;
    let any = ref false in
    Hashtbl.iter
      (fun name rows ->
        if not (Row_set.is_empty rows) then begin
          any := true;
          Hashtbl.replace deltas name rows;
          Hashtbl.replace tables name (Row_set.union (table name) rows)
        end)
      fresh;
    Hashtbl.reset fresh;
    if not !any then continue_ := false
    else
      (* semi-naïve: for every rule and every IDB literal position,
         re-evaluate with the delta at that position *)
      List.iter
        (fun rule ->
          let k = idb_literal_count rule.body in
          for pos = 0 to k - 1 do
            eval_rule rule pos emit
          done)
        p.rules
  done;
  { tables; rounds = !rounds }

let facts r pred =
  match Hashtbl.find_opt r.tables pred with
  | Some rows -> Row_set.elements rows
  | None -> raise Not_found

let fact_count r pred = List.length (facts r pred)

let iterations r = r.rounds

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)

type parser_state = { input : string; mutable pos : int; limits : Limits.t option }

let parse_error st message = Limits.parse_error ~what:"datalog" ~pos:st.pos message

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some '%' ->
      (* comment to end of line *)
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | _ -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some d when d = c -> advance st
  | _ -> parse_error st (Printf.sprintf "expected '%c'" c)

let looking_at st s =
  skip_ws st;
  String.length st.input - st.pos >= String.length s
  && String.sub st.input st.pos (String.length s) = s

let eat st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let parse_ident st =
  skip_ws st;
  let is_ident c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  if st.pos = start then parse_error st "expected an identifier";
  String.sub st.input start (st.pos - start)

let parse_ident_list st =
  expect st '(';
  let rec go acc =
    let id = parse_ident st in
    skip_ws st;
    match peek st with
    | Some ',' ->
        advance st;
        go (id :: acc)
    | Some ')' ->
        advance st;
        List.rev (id :: acc)
    | _ -> parse_error st "expected ',' or ')'"
  in
  go []

let parse_literal st =
  skip_ws st;
  if eat st "streq" then begin
    match parse_ident_list st with
    | [ a; b ] -> Content_eq (a, b)
    | _ -> parse_error st "streq takes two arguments"
  end
  else if eat st "adj" then begin
    match parse_ident_list st with
    | [ a; b ] -> Adjacent (a, b)
    | _ -> parse_error st "adj takes two arguments"
  end
  else if looking_at st "<" then begin
    expect st '<';
    (* formula runs to the next unescaped '>' *)
    let start = st.pos in
    let rec find_close escaped =
      match peek st with
      | None -> parse_error st "unterminated spanner formula"
      | Some '\\' when not escaped ->
          advance st;
          find_close true
      | Some '>' when not escaped -> ()
      | Some _ ->
          advance st;
          find_close false
    in
    find_close false;
    let formula_src = String.sub st.input start (st.pos - start) in
    advance st (* '>' *);
    let e =
      try Evset.of_formula ?limits:st.limits (Regex_formula.parse formula_src)
      with Spanner_fa.Regex.Parse_error (msg, p) ->
        Limits.parse_error ~what:"datalog" ~pos:(start + p)
          (Printf.sprintf "in spanner formula: %s" msg)
    in
    expect st '(';
    let rec bindings acc =
      let sv = parse_ident st in
      skip_ws st;
      let rv =
        match peek st with
        | Some '=' ->
            advance st;
            parse_ident st
        | _ -> sv
      in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          bindings ((Variable.of_string sv, rv) :: acc)
      | Some ')' ->
          advance st;
          List.rev ((Variable.of_string sv, rv) :: acc)
      | _ -> parse_error st "expected ',' or ')'"
    in
    Spanner (e, bindings [])
  end
  else begin
    let name = parse_ident st in
    Idb (name, parse_ident_list st)
  end

let parse_rule st =
  let hname = parse_ident st in
  let hvars = parse_ident_list st in
  skip_ws st;
  if not (eat st ":-") then parse_error st "expected ':-'";
  let rec body acc =
    let literal = parse_literal st in
    skip_ws st;
    match peek st with
    | Some ',' ->
        advance st;
        body (literal :: acc)
    | Some '.' ->
        advance st;
        List.rev (literal :: acc)
    | _ -> parse_error st "expected ',' or '.'"
  in
  { head = (hname, hvars); body = body [] }

let parse ?limits input =
  let st = { input; pos = 0; limits } in
  let rec rules acc =
    skip_ws st;
    if st.pos >= String.length input then List.rev acc else rules (parse_rule st :: acc)
  in
  make (rules [])
