(** Datalog over regular spanners (RGXLog, [33]; mentioned in §1 of the
    paper: "datalog over regular spanners covers the whole class of
    core spanners").

    A program is a set of rules whose body literals are

    - {b spanner atoms}: a regular spanner evaluated on the document,
      its variables bound to rule variables,
    - {b IDB atoms}: intensional predicates over spans,
    - {b built-ins}: content equality (the string-equality selection
      ς= as a predicate — the feature that lets non-recursive programs
      express every core spanner) and span adjacency.

    Evaluation is bottom-up semi-naïve fixpoint over relations of span
    rows.  All values are spans of the one input document, so every
    program terminates: the domain Spans(D) is finite (§1). *)

open Spanner_core

(** A body literal; rule variables are strings. *)
type literal =
  | Spanner of Evset.t * (Variable.t * string) list
      (** [Spanner (e, bindings)]: a tuple t ∈ ⟦e⟧(D) with t(v) bound
          to rule variable r for each [(v, r)] binding.  Spanner
          variables omitted from [bindings] are ignored; tuples leaving
          a bound variable ⊥ do not match. *)
  | Idb of string * string list  (** intensional atom P(x, …) *)
  | Content_eq of string * string
      (** contents of the two spans are equal (built-in ς=) *)
  | Adjacent of string * string
      (** right end of the first span = left end of the second *)

type rule = { head : string * string list; body : literal list }

type program

(** [make rules] validates and compiles a program:
    - consistent arities for every IDB predicate;
    - range restriction: every head variable occurs in a positive body
      atom (spanner or IDB);
    - built-in safety: both arguments of a built-in are bound by
      earlier literals in the body.
    @raise Invalid_argument with a reason otherwise. *)
val make : rule list -> program

(** [run ?limits p doc] computes the least fixpoint of [p] over [doc].
    Under [limits], spanner-atom materialisation is metered as in
    {!Enumerate.to_relation}, every binding step of the semi-naïve
    fixpoint consumes fuel, the deadline is probed periodically, and
    genuinely new derived facts count against the tuple cap
    ({!Spanner_util.Limits.Spanner_error} on violation). *)
type result

val run : ?limits:Spanner_util.Limits.t -> program -> string -> result

(** [facts r pred] is the set of derived rows of [pred], sorted.
    @raise Not_found for an unknown predicate. *)
val facts : result -> string -> Span.t array list

(** [fact_count r pred] is the number of derived rows. *)
val fact_count : result -> string -> int

(** [iterations r] is the number of semi-naïve rounds to fixpoint. *)
val iterations : result -> int

(** {1 Concrete syntax}

    {v
      program  ::= rule*
      rule     ::= atom ":-" literal ("," literal)* "."
      atom     ::= ident "(" ident ("," ident)* ")"
      literal  ::= atom                       IDB atom
                 | "streq" "(" x "," y ")"    content equality (ς=)
                 | "adj" "(" x "," y ")"      span adjacency
                 | "<" formula ">" "(" binding ("," binding)* ")"
                                              spanner atom; formula is
                                              regex-formula syntax
      binding  ::= spanner_var "=" rule_var | ident   (same name both sides)
      comments ::= "%" to end of line
    v}

    Example (transitive closure of equal neighbouring fields):

    {v
      eq(x, y) :- <([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*>(x, y), streq(x, y).
      chain(x, y) :- eq(x, y).
      chain(x, z) :- chain(x, y), eq(y, z).
    v} *)

(** [parse ?limits s] parses and validates a program.  Syntax errors —
    including those of embedded spanner formulas, re-anchored at their
    offset in [s] — raise {!Spanner_util.Limits.Spanner_error} with
    [Parse {what = "datalog"; _}]; validation failures keep raising
    [Invalid_argument] ({!make}).  [limits] governs the
    formula-to-automaton construction of spanner atoms
    ({!Evset.of_formula}). *)
val parse : ?limits:Spanner_util.Limits.t -> string -> program
