module Charset = Spanner_fa.Charset
module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec
module Limits = Spanner_util.Limits

type state = int

type t = {
  n : int;
  initial : state;
  final_set : Bitset.t;
  set_arcs : (Marker.Set.t * state) list array;
  letter_arcs : (Charset.t * state) list array;
  vars : Variable.Set.t;
}

let size e = e.n

let initial e = e.initial

let is_final e q = Bitset.mem e.final_set q

let vars e = e.vars

let iter_set_arcs e q f = List.iter (fun (s, dst) -> f s dst) e.set_arcs.(q)

let iter_letter_arcs e q f = List.iter (fun (cs, dst) -> f cs dst) e.letter_arcs.(q)

(* ------------------------------------------------------------------ *)
(* Conversion from vset-automata                                       *)

module Closure_key = struct
  type t = int * Marker.Set.t

  let compare (q, s) (q', s') =
    let c = Int.compare q q' in
    if c <> 0 then c else Marker.Set.compare s s'
end

module Closure_set = Set.Make (Closure_key)

(* All (q', S) such that q' is reachable from q along ε/marker arcs
   whose collected markers are exactly S (each marker at most once on
   the path).  The closure is worst-case exponential in the number of
   variables, so every element charged against the gauge — a
   pathological formula trips the fuel budget instead of exhausting
   memory. *)
let marker_closure g (v : Vset.t) q =
  let seen = ref (Closure_set.singleton (q, Marker.Set.empty)) in
  let queue = Queue.create () in
  Queue.add (q, Marker.Set.empty) queue;
  while not (Queue.is_empty queue) do
    let p, s = Queue.take queue in
    Vset.iter_transitions v p (fun label dst ->
        Limits.check g;
        let next =
          match label with
          | Vset.Eps -> Some (dst, s)
          | Vset.Mark m when not (Marker.Set.mem m s) -> Some (dst, Marker.Set.add m s)
          | Vset.Mark _ | Vset.Chars _ -> None
        in
        match next with
        | Some key when not (Closure_set.mem key !seen) ->
            seen := Closure_set.add key !seen;
            Queue.add key queue
        | Some _ | None -> ())
  done;
  Closure_set.elements !seen

let of_vset ?(limits = Limits.none) v =
  let g = Limits.start limits in
  let n = Vset.size v in
  Limits.check_states g n;
  let set_arcs = Array.make (max n 1) [] in
  let letter_arcs = Array.make (max n 1) [] in
  let final_set = Bitset.create (max n 1) in
  let raw_letters q =
    let acc = ref [] in
    Vset.iter_transitions v q (fun label dst ->
        match label with
        | Vset.Chars cs -> acc := (cs, dst) :: !acc
        | Vset.Eps | Vset.Mark _ -> ());
    !acc
  in
  for q = 0 to n - 1 do
    let closure = marker_closure g v q in
    List.iter
      (fun (q', s) ->
        Limits.check g;
        if Marker.Set.is_empty s then begin
          (* ε-only closure: absorb into letter arcs and finals. *)
          List.iter (fun arc -> letter_arcs.(q) <- arc :: letter_arcs.(q)) (raw_letters q');
          if Vset.is_final v q' then Bitset.add final_set q
        end
        else set_arcs.(q) <- (s, q') :: set_arcs.(q))
      closure;
    (* Distinct ε-paths to the same raw arc would duplicate it; arcs
       are sets (duplicates would corrupt run counting in the weighted
       semantics and waste work everywhere else). *)
    letter_arcs.(q) <-
      List.sort_uniq
        (fun (cs1, d1) (cs2, d2) ->
          let c = Int.compare d1 d2 in
          if c <> 0 then c else compare (Charset.elements cs1) (Charset.elements cs2))
        letter_arcs.(q);
    set_arcs.(q) <-
      List.sort_uniq
        (fun (s1, d1) (s2, d2) ->
          let c = Int.compare d1 d2 in
          if c <> 0 then c else Marker.Set.compare s1 s2)
        set_arcs.(q)
  done;
  (* Set-arc targets must in turn absorb their ε-closure for letters and
     finals — already ensured because every state got the treatment. *)
  { n = max n 1; initial = Vset.initial v; final_set; set_arcs; letter_arcs; vars = Vset.vars v }

let of_formula ?limits f = of_vset ?limits (Vset.of_formula f)

(* ------------------------------------------------------------------ *)
(* Determinization                                                     *)

let determinize ?(limits = Limits.none) e =
  let g = Limits.start limits in
  let index = Hashtbl.create 64 in
  let subsets = Vec.create () in
  let pending = Queue.create () in
  let intern set =
    let k = Bitset.hash set in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt index k) in
    match List.find_opt (fun (s, _) -> Bitset.equal s set) bucket with
    | Some (_, q) -> q
    | None ->
        (* subset construction: exponential in |e| in the worst case,
           so the state cap applies per interned subset *)
        let q = Vec.push subsets set in
        Limits.check_states g (q + 1);
        Hashtbl.replace index k ((set, q) :: bucket);
        Queue.add q pending;
        q
  in
  let start = Bitset.create e.n in
  Bitset.add start e.initial;
  let q0 = intern start in
  let out_set = Vec.create () and out_letter = Vec.create () in
  let ensure q =
    while Vec.length out_set <= q do
      ignore (Vec.push out_set []);
      ignore (Vec.push out_letter [])
    done
  in
  while not (Queue.is_empty pending) do
    let q = Queue.take pending in
    ensure q;
    let set = Vec.get subsets q in
    (* Marker-set labels: group by label. *)
    let labels = ref [] in
    Bitset.iter
      (fun p ->
        List.iter
          (fun (s, dst) ->
            match List.find_opt (fun (s', _) -> Marker.Set.equal s s') !labels with
            | Some (_, tgt) -> Bitset.add tgt dst
            | None ->
                let tgt = Bitset.create e.n in
                Bitset.add tgt dst;
                labels := (s, tgt) :: !labels)
          e.set_arcs.(p))
      set;
    Vec.set out_set q (List.map (fun (s, tgt) -> (s, intern tgt)) !labels);
    (* Letter transitions: determinise per character, then merge
       characters with equal successor subsets into charsets. *)
    let by_char = Array.make 256 None in
    Bitset.iter
      (fun p ->
        List.iter
          (fun (cs, dst) ->
            Charset.iter
              (fun ch ->
                Limits.check g;
                let code = Char.code ch in
                let tgt =
                  match by_char.(code) with
                  | Some t -> t
                  | None ->
                      let t = Bitset.create e.n in
                      by_char.(code) <- Some t;
                      t
                in
                Bitset.add tgt dst)
              cs)
          e.letter_arcs.(p))
      set;
    let grouped = ref [] in
    Array.iteri
      (fun code tgt ->
        match tgt with
        | None -> ()
        | Some tgt -> (
            let q' = intern tgt in
            match List.assoc_opt q' !grouped with
            | Some cs -> grouped := (q', Charset.add cs (Char.chr code)) :: List.remove_assoc q' !grouped
            | None -> grouped := (q', Charset.singleton (Char.chr code)) :: !grouped))
      by_char;
    Vec.set out_letter q (List.map (fun (q', cs) -> (cs, q')) !grouped)
  done;
  let n = Vec.length subsets in
  ensure (n - 1);
  let final_set = Bitset.create (max n 1) in
  Vec.iteri
    (fun q set ->
      if Bitset.fold (fun p acc -> acc || is_final e p) set false then Bitset.add final_set q)
    subsets;
  {
    n = max n 1;
    initial = q0;
    final_set;
    set_arcs = Vec.to_array out_set;
    letter_arcs = Vec.to_array out_letter;
    vars = e.vars;
  }

let is_deterministic e =
  let ok = ref true in
  for q = 0 to e.n - 1 do
    (* distinct set labels *)
    let rec labels_unique = function
      | [] -> true
      | (s, _) :: rest ->
          (not (List.exists (fun (s', _) -> Marker.Set.equal s s') rest)) && labels_unique rest
    in
    if not (labels_unique e.set_arcs.(q)) then ok := false;
    (* per-character determinism *)
    let seen = Array.make 256 false in
    List.iter
      (fun (cs, _) ->
        Charset.iter
          (fun c ->
            if seen.(Char.code c) then ok := false;
            seen.(Char.code c) <- true)
          cs)
      e.letter_arcs.(q)
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Algebra                                                             *)

let union a b =
  let n = 1 + a.n + b.n in
  let oa = 1 and ob = 1 + a.n in
  let set_arcs = Array.make n [] in
  let letter_arcs = Array.make n [] in
  let final_set = Bitset.create n in
  let copy off (src : t) =
    for q = 0 to src.n - 1 do
      set_arcs.(q + off) <- List.map (fun (s, d) -> (s, d + off)) src.set_arcs.(q);
      letter_arcs.(q + off) <- List.map (fun (cs, d) -> (cs, d + off)) src.letter_arcs.(q)
    done;
    Bitset.iter (fun q -> Bitset.add final_set (q + off)) src.final_set
  in
  copy oa a;
  copy ob b;
  set_arcs.(0) <- set_arcs.(a.initial + oa) @ set_arcs.(b.initial + ob);
  letter_arcs.(0) <- letter_arcs.(a.initial + oa) @ letter_arcs.(b.initial + ob);
  if Bitset.mem final_set (a.initial + oa) || Bitset.mem final_set (b.initial + ob) then
    Bitset.add final_set 0;
  { n; initial = 0; final_set; set_arcs; letter_arcs; vars = Variable.Set.union a.vars b.vars }

let project keep e =
  let keep = Variable.Set.inter keep e.vars in
  let visible s =
    Marker.Set.filter (fun m -> Variable.Set.mem (Marker.variable m) keep) s
  in
  let set_arcs = Array.make e.n [] in
  let letter_arcs = Array.map (fun arcs -> arcs) e.letter_arcs in
  let final_set = Bitset.copy e.final_set in
  for q = 0 to e.n - 1 do
    List.iter
      (fun (s, dst) ->
        let s' = visible s in
        if Marker.Set.is_empty s' then begin
          (* The arc became invisible: compose with the letter arcs and
             finality of its target (one set arc per boundary, so no
             further set-arc composition can follow). *)
          letter_arcs.(q) <- e.letter_arcs.(dst) @ letter_arcs.(q);
          if Bitset.mem e.final_set dst then Bitset.add final_set q
        end
        else set_arcs.(q) <- (s', dst) :: set_arcs.(q))
      e.set_arcs.(q)
  done;
  { e with set_arcs; letter_arcs; final_set; vars = keep }

(* Does some accepting run avoid every marker of [x]?  (Under the
   schemaless semantics of [27], such a run leaves [x] unbound.) *)
let possibly_unbound e x =
  let mentions s = Marker.Set.exists (fun m -> Variable.equal (Marker.variable m) x) s in
  let seen = Bitset.of_list e.n [ e.initial ] in
  let stack = ref [ e.initial ] in
  let found = ref false in
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        if is_final e q then found := true
        else begin
          let visit dst =
            if not (Bitset.mem seen dst) then begin
              Bitset.add seen dst;
              stack := dst :: !stack
            end
          in
          List.iter (fun (s, dst) -> if not (mentions s) then visit dst) e.set_arcs.(q);
          List.iter (fun (_, dst) -> visit dst) e.letter_arcs.(q)
        end
  done;
  !found

(* One product in which the runs of [a] avoid all markers of [avoid_a],
   the runs of [b] avoid [avoid_b], and boundary sets agree exactly on
   the markers of [sync]. *)
let join_product a b ~avoid_a ~avoid_b ~sync =
  let sync_part s = Marker.Set.filter (fun m -> Variable.Set.mem (Marker.variable m) sync) s in
  let avoids avoid s =
    Marker.Set.exists (fun m -> Variable.Set.mem (Marker.variable m) avoid) s
  in
  let set_arcs_a q = List.filter (fun (s, _) -> not (avoids avoid_a s)) a.set_arcs.(q) in
  let set_arcs_b q = List.filter (fun (s, _) -> not (avoids avoid_b s)) b.set_arcs.(q) in
  let index = Hashtbl.create 64 in
  let pending = Queue.create () in
  let states = Vec.create () in
  let state_of p =
    match Hashtbl.find_opt index p with
    | Some q -> q
    | None ->
        let q = Vec.push states p in
        Hashtbl.add index p q;
        Queue.add (p, q) pending;
        q
  in
  let set_arcs = Vec.create () and letter_arcs = Vec.create () and finals = Vec.create () in
  let ensure q =
    while Vec.length set_arcs <= q do
      ignore (Vec.push set_arcs []);
      ignore (Vec.push letter_arcs []);
      ignore (Vec.push finals false)
    done
  in
  let q0 = state_of (a.initial, b.initial) in
  while not (Queue.is_empty pending) do
    let (qa, qb), q = Queue.take pending in
    ensure q;
    if is_final a qa && is_final b qb then Vec.set finals q true;
    (* Letter arcs: synchronised. *)
    List.iter
      (fun (csa, da) ->
        List.iter
          (fun (csb, db) ->
            let cs = Charset.inter csa csb in
            if not (Charset.is_empty cs) then
              Vec.set letter_arcs q ((cs, state_of (da, db)) :: Vec.get letter_arcs q))
          b.letter_arcs.(qb))
      a.letter_arcs.(qa);
    (* Boundary arcs: both sides take one, or one side takes one whose
       synchronised part is empty. *)
    let add_set s dst = Vec.set set_arcs q ((s, dst) :: Vec.get set_arcs q) in
    List.iter
      (fun (sa, da) ->
        if Marker.Set.is_empty (sync_part sa) then add_set sa (state_of (da, qb)))
      (set_arcs_a qa);
    List.iter
      (fun (sb, db) ->
        if Marker.Set.is_empty (sync_part sb) then add_set sb (state_of (qa, db)))
      (set_arcs_b qb);
    List.iter
      (fun (sa, da) ->
        List.iter
          (fun (sb, db) ->
            if Marker.Set.equal (sync_part sa) (sync_part sb) then
              add_set (Marker.Set.union sa sb) (state_of (da, db)))
          (set_arcs_b qb))
      (set_arcs_a qa)
  done;
  let n = Vec.length states in
  ensure (n - 1);
  let final_set = Bitset.create (max n 1) in
  Vec.iteri (fun q f -> if f then Bitset.add final_set q) finals;
  {
    n = max n 1;
    initial = q0;
    final_set;
    set_arcs = Vec.to_array set_arcs;
    letter_arcs = Vec.to_array letter_arcs;
    vars = Variable.Set.union a.vars b.vars;
  }

let join a b =
  (* Under the schemaless semantics an unbound shared variable joins
     with anything, so the product is taken once per guess of which
     shared variables each side leaves unbound (only variables that
     *can* be unbound are guessed), and the branches are unioned. *)
  let shared = Variable.Set.inter a.vars b.vars in
  let opt_a = List.filter (possibly_unbound a) (Variable.Set.elements shared) in
  let opt_b = List.filter (possibly_unbound b) (Variable.Set.elements shared) in
  let rec subsets = function
    | [] -> [ Variable.Set.empty ]
    | x :: rest ->
        let ss = subsets rest in
        ss @ List.map (Variable.Set.add x) ss
  in
  let products =
    List.concat_map
      (fun u1 ->
        List.map
          (fun u2 ->
            let sync = Variable.Set.diff shared (Variable.Set.union u1 u2) in
            join_product a b ~avoid_a:u1 ~avoid_b:u2 ~sync)
          (subsets opt_b))
      (subsets opt_a)
  in
  match products with
  | [] -> assert false (* subsets is never empty *)
  | p :: rest -> List.fold_left union p rest

let join_branches a b =
  let shared = Variable.Set.inter a.vars b.vars in
  let optional e =
    List.length (List.filter (possibly_unbound e) (Variable.Set.elements shared))
  in
  let bits = optional a + optional b in
  if bits >= Sys.int_size - 2 then max_int else 1 lsl bits

let rename_vars f e =
  let mapped = Variable.Set.map f e.vars in
  if Variable.Set.cardinal mapped <> Variable.Set.cardinal e.vars then
    invalid_arg "Evset.rename_vars: renaming is not injective on the automaton's variables";
  let rename_marker = function
    | Marker.Open x -> Marker.Open (f x)
    | Marker.Close x -> Marker.Close (f x)
  in
  let set_arcs =
    Array.map
      (List.map (fun (s, dst) -> (Marker.Set.map rename_marker s, dst)))
      e.set_arcs
  in
  { e with set_arcs; vars = mapped }

let duplicate_var e x x' =
  if Variable.Set.mem x' e.vars then
    invalid_arg "Evset.duplicate_var: shadow variable already occurs";
  if not (Variable.Set.mem x e.vars) then invalid_arg "Evset.duplicate_var: unknown variable";
  let shadow s =
    Marker.Set.fold
      (fun m acc ->
        match m with
        | Marker.Open y when Variable.equal y x -> Marker.Set.add (Marker.Open x') acc
        | Marker.Close y when Variable.equal y x -> Marker.Set.add (Marker.Close x') acc
        | Marker.Open _ | Marker.Close _ -> acc)
      s s
  in
  let set_arcs = Array.map (List.map (fun (s, dst) -> (shadow s, dst))) e.set_arcs in
  { e with set_arcs; vars = Variable.Set.add x' e.vars }

(* ------------------------------------------------------------------ *)
(* Decision procedures                                                 *)

let boundary_step e current set =
  if Marker.Set.is_empty set then current
  else begin
    let next = Bitset.create e.n in
    Bitset.iter
      (fun q ->
        List.iter
          (fun (s, dst) -> if Marker.Set.equal s set then Bitset.add next dst)
          e.set_arcs.(q))
      current;
    next
  end

let letter_step e current c =
  let next = Bitset.create e.n in
  Bitset.iter
    (fun q ->
      List.iter (fun (cs, dst) -> if Charset.mem cs c then Bitset.add next dst) e.letter_arcs.(q))
    current;
  next

let has_final e set = Bitset.fold (fun q acc -> acc || is_final e q) set false

let accepts_tuple e doc tuple =
  let marked = Ref_word.of_doc_tuple doc tuple in
  let _, sets = Ref_word.to_extended marked in
  let n = String.length doc in
  let current = ref (Bitset.of_list e.n [ e.initial ]) in
  (try
     for i = 0 to n - 1 do
       current := boundary_step e !current sets.(i);
       if Bitset.is_empty !current then raise Exit;
       current := letter_step e !current doc.[i]
     done;
     current := boundary_step e !current sets.(n)
   with Exit -> ());
  has_final e !current

let free_boundary_step e current =
  (* At most one set arc per boundary, labels unconstrained. *)
  let next = Bitset.copy current in
  Bitset.iter
    (fun q -> List.iter (fun (_, dst) -> Bitset.add next dst) e.set_arcs.(q))
    current;
  next

let nonempty_on e doc =
  let current = ref (Bitset.of_list e.n [ e.initial ]) in
  String.iter
    (fun c ->
      current := free_boundary_step e !current;
      current := letter_step e !current c)
    doc;
  current := free_boundary_step e !current;
  has_final e !current

let satisfiable e =
  let seen = Bitset.of_list e.n [ e.initial ] in
  let stack = ref [ e.initial ] in
  let found = ref false in
  let visit dst =
    if not (Bitset.mem seen dst) then begin
      Bitset.add seen dst;
      stack := dst :: !stack
    end
  in
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        if is_final e q then found := true
        else begin
          List.iter (fun (_, dst) -> visit dst) e.set_arcs.(q);
          List.iter (fun (_, dst) -> visit dst) e.letter_arcs.(q)
        end
  done;
  !found

let some_witness e =
  (* BFS over (state, boundary-flag) recording parents; flag = a set
     arc was already taken since the last letter. *)
  let idx q flag = (q * 2) + if flag then 1 else 0 in
  let parent = Array.make (e.n * 2) None in
  let seen = Bitset.create (e.n * 2) in
  let queue = Queue.create () in
  let start = idx e.initial false in
  Bitset.add seen start;
  Queue.add (e.initial, false) queue;
  let goal = ref None in
  while !goal = None && not (Queue.is_empty queue) do
    let q, flag = Queue.take queue in
    if is_final e q then goal := Some (q, flag)
    else begin
      if not flag then
        List.iter
          (fun (s, dst) ->
            let i = idx dst true in
            if not (Bitset.mem seen i) then begin
              Bitset.add seen i;
              parent.(i) <- Some (idx q flag, `Set s);
              Queue.add (dst, true) queue
            end)
          e.set_arcs.(q);
      List.iter
        (fun (cs, dst) ->
          let i = idx dst false in
          if not (Bitset.mem seen i) then
            match Charset.choose cs with
            | Some c ->
                Bitset.add seen i;
                parent.(i) <- Some (idx q flag, `Char c);
                Queue.add (dst, false) queue
            | None -> ())
        e.letter_arcs.(q)
    end
  done;
  match !goal with
  | None -> None
  | Some (q, flag) ->
      let rec walk i acc =
        match parent.(i) with None -> acc | Some (p, step) -> walk p (step :: acc)
      in
      let steps = walk (idx q flag) [] in
      let buf = Buffer.create 8 in
      let opens = Hashtbl.create 4 in
      let tuple = ref Span_tuple.empty in
      List.iter
        (fun step ->
          match step with
          | `Char c -> Buffer.add_char buf c
          | `Set s ->
              let pos = Buffer.length buf + 1 in
              Marker.Set.iter
                (function
                  | Marker.Open x -> Hashtbl.replace opens x pos
                  | Marker.Close x ->
                      let left = Option.value ~default:pos (Hashtbl.find_opt opens x) in
                      tuple := Span_tuple.bind !tuple x (Span.make left pos))
                s)
        steps;
      Some (Buffer.contents buf, !tuple)

(* Containment by subset simulation over canonical extended words. *)
let contains a b =
  let module Key = struct
    type t = int * bool * Bitset.t
  end in
  let seen : (int, Key.t list) Hashtbl.t = Hashtbl.create 64 in
  let visited ((qb, flag, set) : Key.t) =
    let k = Bitset.hash set lxor (qb * 31) lxor if flag then 1 else 0 in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen k) in
    if List.exists (fun (q, f, s) -> q = qb && f = flag && Bitset.equal s set) bucket then true
    else begin
      Hashtbl.replace seen k ((qb, flag, set) :: bucket);
      false
    end
  in
  let start = Bitset.of_list a.n [ a.initial ] in
  let ok = ref true in
  let pending = Queue.create () in
  ignore (visited (b.initial, false, start));
  Queue.add (b.initial, false, start) pending;
  while !ok && not (Queue.is_empty pending) do
    let qb, flag, set = Queue.take pending in
    if is_final b qb && not (has_final a set) then ok := false
    else begin
      (* A final state may still extend to longer words, so successors
         are explored either way. *)
      if not flag then
        List.iter
          (fun (s, dst) ->
            let next = Bitset.create a.n in
            Bitset.iter
              (fun qa ->
                List.iter
                  (fun (s', d') -> if Marker.Set.equal s s' then Bitset.add next d')
                  a.set_arcs.(qa))
              set;
            if not (visited (dst, true, next)) then Queue.add (dst, true, next) pending)
          b.set_arcs.(qb);
      List.iter
        (fun (cs, dst) ->
          Charset.iter
            (fun c ->
              let next = letter_step a set c in
              if not (visited (dst, false, next)) then Queue.add (dst, false, next) pending)
            cs)
        b.letter_arcs.(qb)
    end
  done;
  !ok

let equal_spanner a b = contains a b && contains b a

(* Strict-overlap witness search: is there an accepting run with
   open x < open y < close x < close y, all at distinct boundaries? *)
let overlap_possible e x y =
  let expected = [| Marker.Open x; Marker.Open y; Marker.Close x; Marker.Close y |] in
  let pattern_marker m = Array.exists (fun m' -> Marker.equal m m') expected in
  (* Config: (state, phase 0..4, fresh).  fresh = a letter was read
     since the last phase advance (phase 0 counts as always fresh). *)
  let idx q phase fresh = (((q * 5) + phase) * 2) + if fresh then 1 else 0 in
  let seen = Bitset.create (e.n * 5 * 2) in
  let queue = Queue.create () in
  let push q phase fresh =
    let i = idx q phase fresh in
    if not (Bitset.mem seen i) then begin
      Bitset.add seen i;
      Queue.add (q, phase, fresh) queue
    end
  in
  push e.initial 0 true;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let q, phase, fresh = Queue.take queue in
    if phase = 4 && is_final e q then found := true
    else begin
      (* End of word can also be reached after a final set arc; handled
         by the set-arc case below since finals absorb ε-closure. *)
      List.iter
        (fun (s, dst) ->
          let present = Marker.Set.filter pattern_marker s in
          match Marker.Set.cardinal present with
          | 0 -> push dst phase fresh
          | 1 when phase < 4 && Marker.Set.mem expected.(phase) present && (phase = 0 || fresh)
            ->
              if phase + 1 = 4 && is_final e dst then found := true
              else push dst (phase + 1) false
          | _ -> (* out-of-order or same-boundary pattern markers: this
                    run cannot witness a strict overlap *) ())
        e.set_arcs.(q);
      List.iter (fun (cs, dst) -> if not (Charset.is_empty cs) then push dst phase true)
        e.letter_arcs.(q)
    end
  done;
  !found

let hierarchical e =
  let xs = Variable.Set.elements e.vars in
  not
    (List.exists
       (fun x -> List.exists (fun y -> (not (Variable.equal x y)) && overlap_possible e x y) xs)
       xs)

(* ------------------------------------------------------------------ *)
(* Materialising evaluation (reference oracle)                         *)

let eval e doc =
  let n = String.length doc in
  (* Backward usefulness: back.(i) = states at boundary i (before the
     boundary's set arc) from which acceptance is reachable. *)
  let back = Array.make (n + 1) (Bitset.create e.n) in
  let mid = Array.make (n + 1) (Bitset.create e.n) in
  (* mid.(i) = states from which the letter step at position i leads
     into back.(i+1); at i = n, mid.(n) = finals. *)
  let close_boundary m =
    let r = Bitset.copy m in
    for q = 0 to e.n - 1 do
      if List.exists (fun (_, dst) -> Bitset.mem m dst) e.set_arcs.(q) then Bitset.add r q
    done;
    r
  in
  mid.(n) <- Bitset.copy e.final_set;
  back.(n) <- close_boundary mid.(n);
  for i = n - 1 downto 0 do
    let m = Bitset.create e.n in
    for q = 0 to e.n - 1 do
      if
        List.exists
          (fun (cs, dst) -> Charset.mem cs doc.[i] && Bitset.mem back.(i + 1) dst)
          e.letter_arcs.(q)
      then Bitset.add m q
    done;
    mid.(i) <- m;
    back.(i) <- close_boundary m
  done;
  let result = ref (Span_relation.empty e.vars) in
  let emit opens tuple = ignore opens; result := Span_relation.add !result tuple in
  (* DFS over (boundary, state, set-arc-taken flag). [opens] maps open
     variables to their left position; [tuple] holds closed spans. *)
  let rec dfs i q flag opens tuple =
    if i = n && is_final e q then emit opens tuple;
    if not flag then
      List.iter
        (fun (s, dst) ->
          if Bitset.mem (if i = n then mid.(n) else mid.(i)) dst then begin
            let opens', tuple' =
              Marker.Set.fold
                (fun m (o, t) ->
                  match m with
                  | Marker.Open x -> (Variable.Map.add x (i + 1) o, t)
                  | Marker.Close x ->
                      let left =
                        match Variable.Map.find_opt x o with Some l -> l | None -> i + 1
                      in
                      (Variable.Map.remove x o, Span_tuple.bind t x (Span.make left (i + 1))))
                s (opens, tuple)
            in
            dfs i dst true opens' tuple'
          end)
        e.set_arcs.(q);
    if i < n then
      List.iter
        (fun (cs, dst) ->
          if Charset.mem cs doc.[i] && Bitset.mem back.(i + 1) dst then
            dfs (i + 1) dst false opens tuple)
        e.letter_arcs.(q)
  in
  if Bitset.mem back.(0) e.initial then dfs 0 e.initial false Variable.Map.empty Span_tuple.empty;
  !result

(* ------------------------------------------------------------------ *)
(* Visualisation                                                       *)

let pp_dot ppf e =
  let escape s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | c when Char.code c < 32 -> Printf.sprintf "\\\\x%02x" (Char.code c)
           | c -> String.make 1 c (* UTF-8 bytes pass through; Graphviz is UTF-8 *))
         (List.init (String.length s) (String.get s)))
  in
  Format.fprintf ppf "digraph evset {@\n  rankdir=LR;@\n  node [shape=circle];@\n";
  Format.fprintf ppf "  start [shape=point];@\n  start -> q%d;@\n" e.initial;
  for q = 0 to e.n - 1 do
    if is_final e q then Format.fprintf ppf "  q%d [shape=doublecircle];@\n" q
  done;
  for q = 0 to e.n - 1 do
    List.iter
      (fun (cs, dst) ->
        Format.fprintf ppf "  q%d -> q%d [label=\"%s\"];@\n" q dst
          (escape (Format.asprintf "%a" Charset.pp cs)))
      e.letter_arcs.(q);
    List.iter
      (fun (s, dst) ->
        Format.fprintf ppf "  q%d -> q%d [style=dashed, label=\"%s\"];@\n" q dst
          (escape (Format.asprintf "%a" Marker.pp_set s)))
      e.set_arcs.(q)
  done;
  Format.fprintf ppf "}@\n"

(* ------------------------------------------------------------------ *)
(* Back-conversion with canonical marker order (§2.2, Option 1)        *)

let to_vset e =
  let b = Vset.Builder.create () in
  let states = Array.init e.n (fun _ -> Vset.Builder.add_state b) in
  for q = 0 to e.n - 1 do
    List.iter (fun (cs, dst) -> Vset.Builder.add_chars b states.(q) cs states.(dst)) e.letter_arcs.(q);
    List.iter
      (fun (s, dst) ->
        (* chain the markers in canonical order through fresh states *)
        let marks = Marker.Set.elements s in
        let rec go src = function
          | [] -> Vset.Builder.add_eps b src states.(dst)
          | [ m ] -> Vset.Builder.add_mark b src m states.(dst)
          | m :: rest ->
              let mid = Vset.Builder.add_state b in
              Vset.Builder.add_mark b src m mid;
              go mid rest
        in
        go states.(q) marks)
      e.set_arcs.(q)
  done;
  let finals =
    List.filter_map
      (fun q -> if Bitset.mem e.final_set q then Some states.(q) else None)
      (List.init e.n Fun.id)
  in
  Vset.Builder.finish b ~initial:states.(e.initial) ~finals ~vars:e.vars
