(** Two-phase enumeration of regular-spanner results (§2.5).

    Given a regular spanner (an extended vset-automaton) and a
    document, {!prepare} runs a preprocessing phase that is linear in
    the document length (data complexity): it determinises the
    automaton's extended form *on the document* — the product of
    document positions and automaton state-sets — trims it to useful
    nodes, and compresses markerless chains with jump pointers.  The
    resulting structure supports duplicate-free enumeration of all
    result tuples with delay independent of the document length
    (O(k) node hops per tuple, k = number of variables), in the spirit
    of Florenzano et al. [10] as discussed in §2.5.

    Every maximal path of the trimmed product DAG is an accepting run
    of the deterministic extended automaton and corresponds to exactly
    one result tuple, so the depth-first traversal needs no duplicate
    elimination; the enumeration stack keeps only nodes with unexplored
    branches, so the walk from one result to the next never retraces
    exhausted regions.

    Since the introduction of the compiled engine, this module is a
    thin wrapper over {!Compiled}: each call compiles the spanner into
    dense transition tables and runs the array-indexed document pass.
    Callers that evaluate one spanner over many documents should use
    {!Compiled} directly to pay the (spanner-only) compilation once.
    The pre-compilation engine is retained as {!Reference} for
    differential testing and benchmarking. *)

type prepared = Compiled.prepared

(** [prepare ?limits e doc] runs the preprocessing phase.  O(|doc|)
    for a fixed spanner.  [limits] meters compilation and the document
    pass ({!Compiled.prepare}). *)
val prepare : ?limits:Spanner_util.Limits.t -> Evset.t -> string -> prepared

(** [iter p f] calls [f] exactly once per result tuple. *)
val iter : prepared -> (Span_tuple.t -> unit) -> unit

(** [to_seq p] enumerates the tuples on demand. *)
val to_seq : prepared -> Span_tuple.t Seq.t

(** [cardinal p] is the number of result tuples, O(1) after
    preparation (path counts are accumulated during the trim pass). *)
val cardinal : prepared -> int

(** [to_relation ?limits e doc] materialises ⟦e⟧(doc) through the
    enumeration pipeline (used by tests to cross-check against
    {!Evset.eval}). *)
val to_relation : ?limits:Spanner_util.Limits.t -> Evset.t -> string -> Span_relation.t

(** [first p] is the first tuple, if any, without full enumeration. *)
val first : prepared -> Span_tuple.t option

(** Preprocessing statistics, for the benchmark harness; O(1) —
    counts are recorded at {!prepare} time. *)
type stats = {
  nodes : int;  (** useful product nodes *)
  edges : int;  (** useful product edges *)
  boundaries : int;  (** |doc| + 1 *)
}

val stats : prepared -> stats

(** The original engine, before spanner compilation: marker-set labels
    are recollected by list scans, letters probe charset membership
    per arc, and subsets are interned through hash buckets.  Same
    semantics and same product DAG as the compiled engine — kept as a
    differential-testing oracle and as the benchmark baseline for the
    compiled path. *)
module Reference : sig
  type prepared

  val prepare : Evset.t -> string -> prepared
  val iter : prepared -> (Span_tuple.t -> unit) -> unit
  val cardinal : prepared -> int
  val to_relation : Evset.t -> string -> Span_relation.t
end
