(** Extended vset-automata (§2.2 Option 2, [10]).

    Factors of consecutive markers are represented as marker *sets*:
    an extended automaton has letter arcs labelled by character classes
    and set arcs labelled by non-empty marker sets; a run over a
    document takes, at each boundary, at most one set arc, then a
    letter arc.  Accepted "extended words" — a marker set per boundary,
    interleaved with the document's letters — are in bijection with
    (document, span-tuple) pairs, which resolves the marker-order
    ambiguity of plain vset-automata once and for all: all evaluation,
    decision, and enumeration algorithms in this library run on this
    form.

    Invariant maintained by every constructor here: no ∅-labelled set
    arcs (they are composed away into letter arcs and finals), so runs
    correspond exactly to canonical extended words. *)

type state = int

type t

(** {1 Conversion and construction} *)

(** [of_vset ?limits v] computes, for every state, the marker-set
    closure of its ε/marker paths (each marker at most once per
    boundary — soundness of [v] guarantees at most once globally) and
    produces the equivalent extended automaton.  Worst-case
    exponential in the number of variables, linear in practice for
    spanners with few variables (data complexity is unaffected, cf.
    §2.5).  Under [limits], the state count is checked against the
    state cap up front and every closure step consumes fuel, so a
    pathological formula raises
    {!Spanner_util.Limits.Spanner_error}[ (Limit_exceeded _)] instead
    of exhausting memory. *)
val of_vset : ?limits:Spanner_util.Limits.t -> Vset.t -> t

(** [of_formula ?limits f] is [of_vset ?limits (Vset.of_formula f)]. *)
val of_formula : ?limits:Spanner_util.Limits.t -> Regex_formula.t -> t

(** [determinize ?limits e] is the deterministic extended
    vset-automaton of [10]: for every state, at most one successor per
    marker-set label and per character.  Accepted extended words are
    unchanged, but runs become unique per word — the property both
    {!Enumerate} and the SLP-compressed enumeration rely on for
    duplicate-freedom.  Subset construction: worst-case exponential in
    |e| (irrelevant in data complexity, §2.5); under [limits] each
    interned subset counts against the state cap and transition work
    consumes fuel. *)
val determinize : ?limits:Spanner_util.Limits.t -> t -> t

(** [is_deterministic e] checks the determinism property. *)
val is_deterministic : t -> bool

(** [to_vset e] is the inverse of {!of_vset}: each set arc becomes a
    chain of marker arcs *in the canonical marker order* — this is the
    normalisation of §2.2 Option 1 (fix an order on markers and require
    consecutive markers to respect it).  [of_vset (to_vset e)] denotes
    the same spanner as [e]. *)
val to_vset : t -> Vset.t

(** {1 Accessors} *)

val size : t -> int
val initial : t -> state
val is_final : t -> state -> bool
val vars : t -> Variable.Set.t

(** [iter_set_arcs e q f] applies [f set dst] to each set arc
    (labels are non-empty). *)
val iter_set_arcs : t -> state -> (Marker.Set.t -> state -> unit) -> unit

(** [iter_letter_arcs e q f] applies [f cs dst] to each letter arc. *)
val iter_letter_arcs : t -> state -> (Spanner_fa.Charset.t -> state -> unit) -> unit

(** {1 The algebra, on automata (§1, §2.3)}

    These implement the spanner algebra *symbolically*, i.e. without a
    document: union, projection and natural join of regular spanners
    are again regular (the closure results of [9] discussed in §2.2).
    String-equality selection is *not* closed for regular spanners —
    that is the whole point of §2.3/§3 — and therefore lives in
    {!Core_spanner}. *)

(** [union a b] denotes D ↦ ⟦a⟧(D) ∪ ⟦b⟧(D). *)
val union : t -> t -> t

(** [project keep e] denotes π_keep ∘ ⟦e⟧. *)
val project : Variable.Set.t -> t -> t

(** [join a b] denotes the natural join ⟦a⟧ ⋈ ⟦b⟧: the synchronised
    product that agrees on shared-variable markers boundary-wise and
    interleaves private markers. *)
val join : t -> t -> t

(** [join_branches a b] is the number of synchronised products {!join}
    would union: one per guess of which {e possibly-unbound} shared
    variables each side leaves unbound (schemaless semantics), so
    [2^(opt_a + opt_b)] — and 1 whenever every shared variable is
    bound on every run.  Each product has at most
    [size a * size b] states, which makes
    [join_branches a b * size a * size b] the state-blowup estimate a
    cost-based planner can check {e before} paying for the product. *)
val join_branches : t -> t -> int

(** [rename_vars f e] renames every variable [x] to [f x]; [f] must be
    injective on [vars e].
    @raise Invalid_argument otherwise. *)
val rename_vars : (Variable.t -> Variable.t) -> t -> t

(** [duplicate_var e x x'] makes [x'] a shadow of [x]: wherever a
    marker of [x] is read, the same marker of [x'] is read in the same
    boundary set, so every output tuple binds [x'] to exactly the span
    of [x].  Used by the core-simplification construction (§2.3) to
    make string-equality selections act on private copies of visible
    variables.
    @raise Invalid_argument if [x'] already occurs or [x] does not. *)
val duplicate_var : t -> Variable.t -> Variable.t -> t

(** {1 Decision procedures (§2.4)} *)

(** [accepts_tuple e doc t] decides t ∈ ⟦e⟧(doc) — the ModelChecking
    problem for regular spanners — in time O(|doc| · |e|). *)
val accepts_tuple : t -> string -> Span_tuple.t -> bool

(** [nonempty_on e doc] decides ⟦e⟧(doc) ≠ ∅ by treating set arcs as
    free boundary moves (the ε-interpretation of §3.3), in time
    O(|doc| · |e|). *)
val nonempty_on : t -> string -> bool

(** [satisfiable e] decides whether some document yields a non-empty
    relation — graph reachability. *)
val satisfiable : t -> bool

(** [some_witness e] is a (document, tuple) pair in the spanner's
    graph, if the spanner is satisfiable. *)
val some_witness : t -> (string * Span_tuple.t) option

(** [contains a b] decides ⟦b⟧(D) ⊆ ⟦a⟧(D) for all D (the Containment
    problem, PSpace-complete for regular spanners, §2.4) by subset
    simulation over canonical extended words. *)
val contains : t -> t -> bool

(** [equal_spanner a b] decides spanner equality (the Equivalence
    problem, §2.4). *)
val equal_spanner : t -> t -> bool

(** [hierarchical e] decides whether the spanner is hierarchical: no
    document admits a tuple with strictly overlapping spans (§2.2,
    §2.4).  Decided by reachability over (state, marker-status)
    configurations. *)
val hierarchical : t -> bool

(** [overlap_possible e x y] decides whether some accepted tuple gives
    [x] and [y] strictly overlapping spans — the primitive behind
    {!hierarchical} and behind the non-overlapping side condition of
    the core→refl translation (§3.2). *)
val overlap_possible : t -> Variable.t -> Variable.t -> bool

(** {1 Materialising evaluation} *)

(** [eval e doc] is the full span relation ⟦e⟧(doc), computed by a
    pruned depth-first search over the product of [e] and [doc] with
    duplicate elimination — the reference evaluator ("oracle") against
    which {!Enumerate} is tested.  Worst-case exponential time in
    |doc| only through the output size; the search itself is pruned to
    useful product nodes. *)
val eval : t -> string -> Span_relation.t

(** {1 Visualisation} *)

(** [pp_dot ppf e] renders the automaton in Graphviz DOT: letter arcs
    solid (labelled with their character class), set arcs dashed
    (labelled with the marker set), accepting states doubly circled. *)
val pp_dot : Format.formatter -> t -> unit
