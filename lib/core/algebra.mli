(** The spanner algebra of [9] (§1): expressions over primitive
    spanners built from union ∪, natural join ⋈, projection π and
    string-equality selection ς=.

    Expressions without [Select] denote *regular* spanners and can be
    compiled to a single extended vset-automaton ({!compile_regular} —
    the closure results of §2.2).  Expressions with [Select] denote
    *core* spanners; they are evaluated here by materialisation, and
    compiled to the simplified normal form by {!Core_spanner} (§2.3). *)

type t =
  | Formula of Regex_formula.t  (** a primitive RGX spanner *)
  | Automaton of Evset.t  (** a primitive automaton spanner *)
  | Union of t * t
  | Join of t * t
  | Project of Variable.Set.t * t
  | Select of Variable.Set.t * t  (** ς=_Z *)

(** [formula s] parses a regex formula into a primitive expression. *)
val formula : string -> t

(** [schema e] is the expression's output variable set. *)
val schema : t -> Variable.Set.t

(** [is_regular e] tests for the absence of [Select]. *)
val is_regular : t -> bool

(** [compile_regular e] compiles a [Select]-free expression to one
    automaton.
    @raise Invalid_argument if [e] contains [Select]. *)
val compile_regular : t -> Evset.t

(** [eval e doc] evaluates by structural recursion over materialised
    relations — the textbook semantics, used as the oracle for
    {!Core_spanner.simplify}. *)
val eval : t -> string -> Span_relation.t

(** [size e] is the number of algebra nodes. *)
val size : t -> int

(** [parse ?load s] parses the concrete algebra syntax:

    {v
    expr   := join ("|" join)*                 union (lowest precedence)
    join   := atom ("&" atom)*                 natural join
    atom   := rgx:"FORMULA" | file:"PATH"      primitive RGX spanners
            | pi[x, y](expr)                   projection
            | sel[x, y](expr)                  string-equality selection
            | (expr)
    v}

    String literals escape the quote and backslash characters with a
    backslash; whitespace is free between tokens.  The [file:] leaf
    resolves its path through [load] (the
    CLI passes a file reader); by default it is rejected, so untrusted
    expressions cannot touch the filesystem.  Nesting is capped, and
    every syntax error — including one inside an embedded formula —
    raises {!Spanner_util.Limits.Spanner_error}[ (Parse _)] with a
    byte offset into [s].  Inverse of {!pp} on [Formula]-leaf
    expressions. *)
val parse : ?load:(string -> string) -> string -> t

(** [pp ppf e] prints [e] in the concrete syntax of {!parse}, binary
    operators fully parenthesised — re-parseable, except for
    [Automaton] leaves, which have no textual form and print as
    [<automaton:N states>]. *)
val pp : Format.formatter -> t -> unit

(** [to_string e] is [pp] to a string. *)
val to_string : t -> string
