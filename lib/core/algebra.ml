type t =
  | Formula of Regex_formula.t
  | Automaton of Evset.t
  | Union of t * t
  | Join of t * t
  | Project of Variable.Set.t * t
  | Select of Variable.Set.t * t

let formula s = Formula (Regex_formula.parse s)

let rec schema = function
  | Formula f -> Regex_formula.vars f
  | Automaton a -> Evset.vars a
  | Union (a, b) | Join (a, b) -> Variable.Set.union (schema a) (schema b)
  | Project (vars, e) -> Variable.Set.inter vars (schema e)
  | Select (_, e) -> schema e

let rec is_regular = function
  | Formula _ | Automaton _ -> true
  | Union (a, b) | Join (a, b) -> is_regular a && is_regular b
  | Project (_, e) -> is_regular e
  | Select _ -> false

let rec compile_regular = function
  | Formula f -> Evset.of_formula f
  | Automaton a -> a
  | Union (a, b) -> Evset.union (compile_regular a) (compile_regular b)
  | Join (a, b) -> Evset.join (compile_regular a) (compile_regular b)
  | Project (vars, e) -> Evset.project vars (compile_regular e)
  | Select _ -> invalid_arg "Algebra.compile_regular: expression contains a string-equality selection"

let rec eval e doc =
  match e with
  | Formula f -> Evset.eval (Evset.of_formula f) doc
  | Automaton a -> Evset.eval a doc
  | Union (a, b) -> Span_relation.union (eval a doc) (eval b doc)
  | Join (a, b) -> Span_relation.join (eval a doc) (eval b doc)
  | Project (vars, e) -> Span_relation.project vars (eval e doc)
  | Select (vars, e) -> Span_relation.select_equal doc vars (eval e doc)

let rec size = function
  | Formula _ | Automaton _ -> 1
  | Union (a, b) | Join (a, b) -> 1 + size a + size b
  | Project (_, e) | Select (_, e) -> 1 + size e

(* ------------------------------------------------------------------ *)
(* Concrete syntax.

   pp and parse share one unambiguous grammar, so printed expressions
   re-parse (modulo the Automaton leaf, which has no textual form):

     expr   := join ("|" join)*                    union, lowest precedence
     join   := atom ("&" atom)*
     atom   := "rgx:" STRING | "file:" STRING
             | "pi" varset "(" expr ")"            projection
             | "sel" varset "(" expr ")"           string-equality selection
             | "(" expr ")"
     varset := "[" [ident ("," ident)*] "]"
     STRING := '"' (char | '\"' | '\\')* '"'

   pp prints binary operators fully parenthesised, so the printed form
   is a fixpoint of parse∘pp (the round-trip property tested in
   test_optimizer.ml). *)

module Limits = Spanner_util.Limits

let escape_formula s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      (match c with '"' | '\\' -> Buffer.add_char buf '\\' | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_vars ppf vars =
  Format.fprintf ppf "[%s]"
    (String.concat ", " (List.map Variable.name (Variable.Set.elements vars)))

let rec pp ppf = function
  | Formula f -> Format.fprintf ppf "rgx:\"%s\"" (escape_formula (Regex_formula.to_string f))
  | Automaton a -> Format.fprintf ppf "<automaton:%d states>" (Evset.size a)
  | Union (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Join (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Project (vars, e) -> Format.fprintf ppf "pi%a(%a)" pp_vars vars pp e
  | Select (vars, e) -> Format.fprintf ppf "sel%a(%a)" pp_vars vars pp e

let to_string e = Format.asprintf "%a" pp e

(* Hostile inputs are expected here (the CLI and the fuzz harness feed
   this parser raw bytes): every failure is a typed
   [Spanner_error (Parse _)], and nesting is capped so deeply
   parenthesised garbage cannot overflow the OCaml stack. *)
let max_depth = 1_000

let err pos msg = Limits.parse_error ~what:"algebra" ~pos msg

let default_load path =
  ignore path;
  err 0 "file: formulas are not enabled in this context"

let parse ?(load = default_load) s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let looking_at kw =
    !pos + String.length kw <= n && String.sub s !pos (String.length kw) = kw
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else err !pos (Printf.sprintf "expected '%c'" c)
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    let is_head c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
    let is_tail c = is_head c || (c >= '0' && c <= '9') in
    if !pos < n && is_head s.[!pos] then begin
      incr pos;
      while !pos < n && is_tail s.[!pos] do
        incr pos
      done;
      String.sub s start (!pos - start)
    end
    else err start "expected a variable name"
  in
  let varset () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Variable.Set.empty
    end
    else
      let rec go acc =
        let acc = Variable.Set.add (Variable.of_string (ident ())) acc in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go acc
        | Some ']' ->
            incr pos;
            acc
        | _ -> err !pos "expected ',' or ']' in variable set"
      in
      go Variable.Set.empty
  in
  let string_lit () =
    skip_ws ();
    let start = !pos in
    if peek () <> Some '"' then err !pos "expected '\"'";
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err start "unterminated string literal"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then err start "unterminated string literal";
            (match s.[!pos + 1] with
            | ('"' | '\\') as c -> Buffer.add_char buf c
            | _ -> err !pos "invalid escape in string literal (only \\\" and \\\\)");
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    (start + 1, Buffer.contents buf)
  in
  let formula_of ~what lit_start text =
    try Formula (Regex_formula.parse text)
    with Spanner_fa.Regex.Parse_error (msg, p) ->
      Limits.parse_error ~what ~pos:(lit_start + p) msg
  in
  let rec expr d =
    if d > max_depth then err !pos "expression nested too deeply";
    let lhs = ref (join_chain d) in
    skip_ws ();
    while peek () = Some '|' do
      incr pos;
      lhs := Union (!lhs, join_chain d);
      skip_ws ()
    done;
    !lhs
  and join_chain d =
    let lhs = ref (atom d) in
    skip_ws ();
    while peek () = Some '&' do
      incr pos;
      lhs := Join (!lhs, atom d);
      skip_ws ()
    done;
    !lhs
  and atom d =
    skip_ws ();
    if looking_at "rgx:" then begin
      pos := !pos + 4;
      let lit_start, text = string_lit () in
      formula_of ~what:"algebra formula" lit_start text
    end
    else if looking_at "file:" then begin
      pos := !pos + 5;
      let lit_start, path = string_lit () in
      formula_of ~what:("algebra formula (" ^ path ^ ")") lit_start (load path)
    end
    else if looking_at "pi" then begin
      pos := !pos + 2;
      let vars = varset () in
      expect '(';
      let e = expr (d + 1) in
      expect ')';
      Project (vars, e)
    end
    else if looking_at "sel" then begin
      pos := !pos + 3;
      let vars = varset () in
      expect '(';
      let e = expr (d + 1) in
      expect ')';
      Select (vars, e)
    end
    else if peek () = Some '(' then begin
      incr pos;
      let e = expr (d + 1) in
      expect ')';
      e
    end
    else err !pos "expected an expression (rgx:, file:, pi, sel or '(')"
  in
  let e = expr 0 in
  skip_ws ();
  if !pos < n then err !pos "trailing input after expression";
  e
