module Regex = Spanner_fa.Regex
module Charset = Spanner_fa.Charset

type t =
  | Empty
  | Epsilon
  | Chars of Charset.t
  | Bind of Variable.t * t
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let empty = Empty

let epsilon = Epsilon

let chars cs = if Charset.is_empty cs then Empty else Chars cs

let char c = Chars (Charset.singleton c)

let bind x f = Bind (x, f)

let concat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, f | f, Epsilon -> f
  | _ -> Concat (a, b)

let alt a b = match (a, b) with Empty, f | f, Empty -> f | _ -> Alt (a, b)

let star = function Empty | Epsilon -> Epsilon | f -> Star f

let plus = function Empty -> Empty | Epsilon -> Epsilon | f -> Plus f

let opt = function Empty | Epsilon -> Epsilon | f -> Opt f

let concat_list fs = List.fold_left concat Epsilon fs

let alt_list fs = List.fold_left alt Empty fs

let str s = concat_list (List.map char (List.init (String.length s) (String.get s)))

let rec of_regex = function
  | Regex.Empty -> Empty
  | Regex.Epsilon -> Epsilon
  | Regex.Chars cs -> Chars cs
  | Regex.Concat (a, b) -> concat (of_regex a) (of_regex b)
  | Regex.Alt (a, b) -> alt (of_regex a) (of_regex b)
  | Regex.Star a -> star (of_regex a)
  | Regex.Plus a -> plus (of_regex a)
  | Regex.Opt a -> opt (of_regex a)

let rec vars = function
  | Empty | Epsilon | Chars _ -> Variable.Set.empty
  | Bind (x, f) -> Variable.Set.add x (vars f)
  | Concat (a, b) | Alt (a, b) -> Variable.Set.union (vars a) (vars b)
  | Star f | Plus f | Opt f -> vars f

type functionality = Total | Schemaless | Ill_formed of string

let functionality f =
  let exception Ill of string in
  (* [walk f] returns (must, may): the variables marked on *every*
     word of L(f) and on *some* word.  Raises on any shape that could
     mark a variable twice. *)
  let rec walk = function
    | Empty | Epsilon | Chars _ -> (Variable.Set.empty, Variable.Set.empty)
    | Bind (x, f) ->
        let must, may = walk f in
        if Variable.Set.mem x may then
          raise (Ill (Printf.sprintf "variable %s bound inside its own binding" (Variable.name x)));
        (Variable.Set.add x must, Variable.Set.add x may)
    | Concat (a, b) ->
        let must_a, may_a = walk a and must_b, may_b = walk b in
        let clash = Variable.Set.inter may_a may_b in
        if not (Variable.Set.is_empty clash) then
          raise
            (Ill
               (Printf.sprintf "variable %s can be bound on both sides of a concatenation"
                  (Variable.name (Variable.Set.choose clash))));
        (Variable.Set.union must_a must_b, Variable.Set.union may_a may_b)
    | Alt (a, b) ->
        let must_a, may_a = walk a and must_b, may_b = walk b in
        (Variable.Set.inter must_a must_b, Variable.Set.union may_a may_b)
    | Star f | Plus f ->
        let _, may = walk f in
        if not (Variable.Set.is_empty may) then
          raise
            (Ill
               (Printf.sprintf "variable %s bound under an iteration"
                  (Variable.name (Variable.Set.choose may))));
        (Variable.Set.empty, Variable.Set.empty)
    | Opt f ->
        let _, may = walk f in
        (Variable.Set.empty, may)
  in
  match walk f with
  | must, may -> if Variable.Set.equal must may then Total else Schemaless
  | exception Ill reason -> Ill_formed reason

let is_well_formed f = match functionality f with Ill_formed _ -> false | Total | Schemaless -> true

let rec size = function
  | Empty | Epsilon | Chars _ -> 1
  | Bind (_, f) | Star f | Plus f | Opt f -> 1 + size f
  | Concat (a, b) | Alt (a, b) -> 1 + size a + size b

(* ------------------------------------------------------------------ *)
(* Parsing: the regex grammar of Spanner_fa.Regex plus  !x{ α }        *)

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Regex.Parse_error (message, st.pos))

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_ident st =
  let start = st.pos in
  let is_ident c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a variable name";
  String.sub st.input start (st.pos - start)

let parse_class st =
  (* Delegate to the plain regex parser by re-scanning the class from
     '['; it has exactly the same class grammar. *)
  let start = st.pos - 1 in
  let rec find_end i escaped =
    if i >= String.length st.input then fail st "unterminated character class"
    else if escaped then find_end (i + 1) false
    else
      match st.input.[i] with
      | '\\' -> find_end (i + 1) true
      | ']' -> i
      | _ -> find_end (i + 1) false
  in
  (* skip a leading ']' that would close an empty class immediately:
     the base grammar treats '[]' as the empty class *)
  let close = find_end st.pos false in
  let fragment = String.sub st.input start (close - start + 1) in
  st.pos <- close + 1;
  match Regex.parse fragment with
  | Regex.Chars cs -> Chars cs
  | Regex.Empty -> Empty
  | _ -> fail st "malformed character class"

let rec parse_alt st =
  let left = parse_concat st in
  match peek st with
  | Some '|' ->
      advance st;
      alt left (parse_alt st)
  | _ -> left

and parse_concat st =
  let rec loop acc =
    match peek st with
    | None | Some ('|' | ')' | '}') -> acc
    | Some ('*' | '+' | '?') -> fail st "dangling postfix operator"
    | Some _ -> loop (concat acc (parse_postfix st))
  in
  loop Epsilon

and parse_bounds st =
  let read_int () =
    let start = st.pos in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st
    done;
    if st.pos = start then fail st "expected a repetition count";
    match int_of_string_opt (String.sub st.input start (st.pos - start)) with
    | Some n -> n
    | None -> fail st "repetition count too large"
  in
  let m = read_int () in
  let bounds =
    match peek st with
    | Some ',' ->
        advance st;
        (match peek st with
        | Some '0' .. '9' ->
            let n = read_int () in
            if n < m then fail st "repetition bounds out of order";
            (m, Some n)
        | _ -> (m, None))
    | _ -> (m, Some m)
  in
  expect st '}';
  bounds

and parse_postfix st =
  let base = parse_atom st in
  let rec loop f =
    match peek st with
    | Some '*' ->
        advance st;
        loop (star f)
    | Some '+' ->
        advance st;
        loop (plus f)
    | Some '?' ->
        advance st;
        loop (opt f)
    | Some '{' ->
        advance st;
        let m, n = parse_bounds st in
        Regex.check_bounds ~fail:(fail st) ~size:(size f) m n;
        let repeated = concat_list (List.init m (fun _ -> f)) in
        let tail =
          match n with
          | None -> star f
          | Some n -> concat_list (List.init (n - m) (fun _ -> opt f))
        in
        loop (concat repeated tail)
    | _ -> f
  in
  loop base

and parse_atom st =
  match peek st with
  | None -> fail st "expected an atom"
  | Some '!' ->
      advance st;
      let name = parse_ident st in
      expect st '{';
      let body = parse_alt st in
      expect st '}';
      Bind (Variable.of_string name, body)
  | Some '(' ->
      advance st;
      let f = parse_alt st in
      expect st ')';
      f
  | Some '[' ->
      advance st;
      parse_class st
  | Some '.' ->
      advance st;
      Chars Charset.full
  | Some '\\' ->
      advance st;
      (match peek st with
      | Some c ->
          advance st;
          char c
      | None -> fail st "dangling escape")
  | Some (('{' | '}' | '&') as c) ->
      fail st (Printf.sprintf "reserved character '%c' must be escaped" c)
  | Some c ->
      advance st;
      char c

let parse input =
  let st = { input; pos = 0 } in
  let f = parse_alt st in
  (match peek st with None -> () | Some c -> fail st (Printf.sprintf "unexpected '%c'" c));
  f

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let rec pp_prec prec ppf f =
  let parens lvl body = if prec > lvl then Format.fprintf ppf "(%t)" body else body ppf in
  match f with
  | Empty -> Format.pp_print_string ppf "[]"
  | Epsilon -> Format.pp_print_string ppf "()"
  | Chars cs ->
      (match Charset.elements cs with
      | [ c ] ->
          if Regex.is_meta c then Format.fprintf ppf "\\%c" c else Format.fprintf ppf "%c" c
      | _ -> Charset.pp ppf cs)
  | Bind (x, f) -> Format.fprintf ppf "!%a{%a}" Variable.pp x (pp_prec 0) f
  | Alt (a, b) -> parens 0 (fun ppf -> Format.fprintf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b)
  | Concat (a, b) ->
      parens 1 (fun ppf -> Format.fprintf ppf "%a%a" (pp_prec 1) a (pp_prec 1) b)
  | Star a -> parens 2 (fun ppf -> Format.fprintf ppf "%a*" (pp_prec 2) a)
  | Plus a -> parens 2 (fun ppf -> Format.fprintf ppf "%a+" (pp_prec 2) a)
  | Opt a -> parens 2 (fun ppf -> Format.fprintf ppf "%a?" (pp_prec 2) a)

let pp ppf f = pp_prec 0 ppf f

let to_string f = Format.asprintf "%a" pp f
