module Bitset = Spanner_util.Bitset
module Bitmatrix = Spanner_util.Bitmatrix
module Vec = Spanner_util.Vec
module Pool = Spanner_util.Pool
module Limits = Spanner_util.Limits
module Charset = Spanner_fa.Charset

(* ------------------------------------------------------------------ *)
(* Compiled tables                                                     *)

type t = {
  source : Evset.t;
  nstates : int;
  initial : int;
  final : bool array; (* nstates *)
  vars : Variable.Set.t;
  labels : Marker.Set.t array; (* label id -> marker set (non-empty) *)
  nclasses : int;
  class_of : int array; (* 256: byte -> byte class *)
  (* Letter arcs.  [letter_det] is the dense table (state × class ->
     target or -1) when the automaton has at most one successor per
     state and byte; otherwise [letter_off]/[letter_dst] hold the CSR
     adjacency over (state × class) cells. *)
  deterministic : bool;
  letter_det : int array; (* nstates × nclasses, or empty *)
  letter_off : int array; (* nstates × nclasses + 1 *)
  letter_dst : int array;
  (* Set arcs, CSR over states. *)
  set_off : int array; (* nstates + 1 *)
  set_lbl : int array;
  set_dst : int array;
  (* Small-automaton fast path: when every state fits in one machine
     word, subsets are plain int bitmasks and the per-document pass is
     integer arithmetic only.  [succ_mask] folds each (state, class)
     letter cell into the mask of its successors, so a subset image is
     an or-loop over set bits — no per-arc work at all. *)
  small : bool; (* nstates <= Sys.int_size *)
  final_mask : int;
  succ_mask : int array; (* nstates × nclasses, or empty *)
  set_dst_bit : int array; (* 1 lsl set_dst, or empty *)
}

module Label_map = Map.Make (Marker.Set)

let of_evset ?(limits = Limits.none) e =
  let g = Limits.start limits in
  let nstates = Evset.size e in
  Limits.check_states g nstates;
  (* Byte classes: bytes the spanner's charsets never separate share a
     column of the transition table. *)
  let charsets = ref [] in
  for q = 0 to nstates - 1 do
    Evset.iter_letter_arcs e q (fun cs _ -> charsets := cs :: !charsets)
  done;
  let class_of, nclasses = Charset.byte_classes !charsets in
  Limits.charge g (nstates * nclasses);
  let rep = Array.make nclasses 0 in
  for code = 255 downto 0 do
    rep.(class_of.(code)) <- code
  done;
  (* Marker-set alphabet interning. *)
  let label_map = ref Label_map.empty in
  let label_vec = Vec.create () in
  let label_of s =
    match Label_map.find_opt s !label_map with
    | Some i -> i
    | None ->
        let i = Vec.push label_vec s in
        label_map := Label_map.add s i !label_map;
        i
  in
  (* Set arcs: flatten per-state lists into CSR, preserving arc order
     (enumeration order depends on it). *)
  let set_rows =
    Array.init nstates (fun q ->
        let acc = ref [] in
        Evset.iter_set_arcs e q (fun s dst -> acc := (label_of s, dst) :: !acc);
        List.rev !acc)
  in
  let set_off = Array.make (nstates + 1) 0 in
  for q = 0 to nstates - 1 do
    set_off.(q + 1) <- set_off.(q) + List.length set_rows.(q)
  done;
  let set_lbl = Array.make set_off.(nstates) 0 in
  let set_dst = Array.make set_off.(nstates) 0 in
  Array.iteri
    (fun q row ->
      List.iteri
        (fun k (lbl, dst) ->
          set_lbl.(set_off.(q) + k) <- lbl;
          set_dst.(set_off.(q) + k) <- dst)
        row)
    set_rows;
  (* Letter arcs: one cell per (state, class); a class is in a charset
     iff its representative byte is. *)
  let cells = Array.make (nstates * nclasses) [] in
  for q = 0 to nstates - 1 do
    Evset.iter_letter_arcs e q (fun cs dst ->
        let table = Charset.to_table cs in
        for c = 0 to nclasses - 1 do
          if table.(rep.(c)) then cells.((q * nclasses) + c) <- dst :: cells.((q * nclasses) + c)
        done)
  done;
  let cells = Array.map (List.sort_uniq Int.compare) cells in
  let ncells = nstates * nclasses in
  let letter_off = Array.make (ncells + 1) 0 in
  for i = 0 to ncells - 1 do
    letter_off.(i + 1) <- letter_off.(i) + List.length cells.(i)
  done;
  let letter_dst = Array.make letter_off.(ncells) 0 in
  Array.iteri
    (fun i dsts -> List.iteri (fun k dst -> letter_dst.(letter_off.(i) + k) <- dst) dsts)
    cells;
  let deterministic = Array.for_all (fun dsts -> List.compare_length_with dsts 1 <= 0) cells in
  let letter_det =
    if deterministic then Array.map (function [ d ] -> d | _ -> -1) cells else [||]
  in
  let small = nstates <= Sys.int_size in
  let final_mask = ref 0 in
  if small then
    for q = 0 to nstates - 1 do
      if Evset.is_final e q then final_mask := !final_mask lor (1 lsl q)
    done;
  let succ_mask =
    if small then
      Array.map (List.fold_left (fun m dst -> m lor (1 lsl dst)) 0) cells
    else [||]
  in
  let set_dst_bit = if small then Array.map (fun dst -> 1 lsl dst) set_dst else [||] in
  {
    source = e;
    nstates;
    initial = Evset.initial e;
    final = Array.init nstates (Evset.is_final e);
    vars = Evset.vars e;
    labels = Vec.to_array label_vec;
    nclasses;
    class_of;
    deterministic;
    letter_det;
    letter_off;
    letter_dst;
    set_off;
    set_lbl;
    set_dst;
    small;
    final_mask = !final_mask;
    succ_mask;
    set_dst_bit;
  }

let of_formula ?limits f = of_evset ?limits (Evset.of_formula ?limits f)

let evset ct = ct.source
let vars ct = ct.vars
let states ct = ct.nstates
let classes ct = ct.nclasses
let alphabet ct = Array.length ct.labels
let is_letter_deterministic ct = ct.deterministic
let initial ct = ct.initial
let is_final_state ct q = ct.final.(q)
let label_markers ct lbl = ct.labels.(lbl)

let iter_set_arcs ct q f =
  for k = ct.set_off.(q) to ct.set_off.(q + 1) - 1 do
    f ct.set_lbl.(k) ct.set_dst.(k)
  done

(* ------------------------------------------------------------------ *)
(* Per-factor transition summaries: the state→state behaviour of the
   automaton over one derived factor, composable along SLP
   concatenation nodes (§4.2/§4.3).  [pure] relates p to q when some
   run over the factor reads only letters; [mixed] when some run also
   takes ≥ 1 set arc.  At most one set arc precedes each letter (the
   normal form every engine here assumes), so a terminal's mixed
   matrix is one set step followed by the letter step.                 *)

type summary = { pure : Bitmatrix.t; mixed : Bitmatrix.t }

let class_of_char ct c = ct.class_of.(Char.code c)

let class_matrix ct cls =
  if cls < 0 || cls >= ct.nclasses then invalid_arg "Compiled.class_matrix: no such byte class";
  let m = Bitmatrix.create ct.nstates in
  if ct.deterministic then
    for q = 0 to ct.nstates - 1 do
      let dst = ct.letter_det.((q * ct.nclasses) + cls) in
      if dst >= 0 then Bitmatrix.set m q dst
    done
  else
    for q = 0 to ct.nstates - 1 do
      let cell = (q * ct.nclasses) + cls in
      for k = ct.letter_off.(cell) to ct.letter_off.(cell + 1) - 1 do
        Bitmatrix.set m q ct.letter_dst.(k)
      done
    done;
  m

let letter_matrix ct c = class_matrix ct (class_of_char ct c)

let set_step_matrix ct =
  let m = Bitmatrix.create ct.nstates in
  for q = 0 to ct.nstates - 1 do
    iter_set_arcs ct q (fun _ dst -> Bitmatrix.set m q dst)
  done;
  m

let summary_of_terminal ct c =
  let pure = letter_matrix ct c in
  { pure; mixed = Bitmatrix.mul (set_step_matrix ct) pure }

let summary_compose l r =
  {
    pure = Bitmatrix.mul l.pure r.pure;
    mixed =
      Bitmatrix.union
        (Bitmatrix.mul l.mixed (Bitmatrix.union r.pure r.mixed))
        (Bitmatrix.mul l.pure r.mixed);
  }

(* ------------------------------------------------------------------ *)
(* Per-document preprocessing: the product DAG of Enumerate, built
   from the compiled tables — array indexing only on the hot path.    *)

type node = {
  id : int;
  boundary : int;
  mutable actions : action list;
  mutable useful : bool;
  mutable jump : node; (* deepest markerless descendant chain entry *)
  mutable count : int; (* number of accepting runs through this node *)
}

and action =
  | Eof_empty
  | Eof_set of int (* label id *)
  | Edge of int * int * node (* boundary, label id, target *)
  | Skip of node

type prepared = {
  tables : t;
  doc_len : int;
  root : node option;
  node_count : int; (* useful nodes, recorded at prepare time *)
  edge_count : int; (* useful actions, recorded at prepare time *)
}

type stats = { nodes : int; edges : int; boundaries : int }

(* Backward pass over boundaries: usefulness, trimming, path counts and
   jump pointers.  Nodes were discovered in boundary order, so the
   reversed discovery list ([all], head = last discovered) is a valid
   topological order.  Useful node/edge counts are accumulated here so
   [stats] is O(1). *)
let trim_and_pack ct n root all =
  let node_count = ref 0 and edge_count = ref 0 in
  List.iter
    (fun node ->
      let keep action =
        match action with
        | Eof_empty | Eof_set _ -> true
        | Edge (_, _, t) | Skip t -> t.useful
      in
      node.actions <- List.filter keep node.actions;
      node.useful <- node.actions <> [];
      if node.useful then begin
        incr node_count;
        edge_count := !edge_count + List.length node.actions
      end;
      node.count <-
        List.fold_left
          (fun acc action ->
            acc + match action with Eof_empty | Eof_set _ -> 1 | Edge (_, _, t) | Skip t -> t.count)
          0 node.actions;
      node.jump <- (match node.actions with [ Skip t ] -> t.jump | _ -> node))
    all;
  {
    tables = ct;
    doc_len = n;
    root = (if root.useful then Some root.jump else None);
    node_count = !node_count;
    edge_count = !edge_count;
  }

let fresh_node counter boundary =
  let id = !counter in
  incr counter;
  let rec node = { id; boundary; actions = []; useful = false; jump = node; count = 0 } in
  node

(* Small-automaton document pass: subsets are int bitmasks, interning
   keys on the mask itself, and images are or-loops over [succ_mask].
   Discovery order (states ascending, arcs in CSR order) matches the
   bitset path exactly, so both produce the same enumeration order. *)
let prepare_small g ct doc =
  let n = String.length doc in
  let counter = ref 0 in
  let table : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let table_boundary = ref 0 in
  let worklist = Queue.create () in
  let intern boundary mask =
    if boundary <> !table_boundary then begin
      Hashtbl.reset table;
      table_boundary := boundary
    end;
    match Hashtbl.find_opt table mask with
    | Some node -> node
    | None ->
        let node = fresh_node counter boundary in
        Hashtbl.add table mask node;
        Queue.add (node, mask) worklist;
        node
  in
  let nclasses = ct.nclasses and succ = ct.succ_mask in
  let image mask cls =
    let acc = ref 0 and m = ref mask and q = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then acc := !acc lor succ.((!q * nclasses) + cls);
      m := !m lsr 1;
      incr q
    done;
    !acc
  in
  let nlabels = Array.length ct.labels in
  let label_stamp = Array.make (max 1 nlabels) (-1) in
  let label_acc = Array.make (max 1 nlabels) 0 in
  let generation = ref (-1) in
  let set_labels mask =
    incr generation;
    let g = !generation in
    let found = ref [] in
    let off = ct.set_off and lbls = ct.set_lbl and dbit = ct.set_dst_bit in
    let m = ref mask and q = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then
        for k = off.(!q) to off.(!q + 1) - 1 do
          let lbl = lbls.(k) in
          if label_stamp.(lbl) <> g then begin
            label_stamp.(lbl) <- g;
            label_acc.(lbl) <- 0;
            found := lbl :: !found
          end;
          label_acc.(lbl) <- label_acc.(lbl) lor dbit.(k)
        done;
      m := !m lsr 1;
      incr q
    done;
    !found
  in
  let final_mask = ct.final_mask in
  let root = intern 0 (1 lsl ct.initial) in
  let all = ref [] in
  while not (Queue.is_empty worklist) do
    Limits.check g;
    let node, mask = Queue.take worklist in
    all := node :: !all;
    let i = node.boundary in
    if i = n then begin
      let eofs =
        List.filter_map
          (fun lbl -> if label_acc.(lbl) land final_mask <> 0 then Some (Eof_set lbl) else None)
          (set_labels mask)
      in
      let eofs = if mask land final_mask <> 0 then eofs @ [ Eof_empty ] else eofs in
      node.actions <- eofs
    end
    else begin
      let cls = ct.class_of.(Char.code (String.unsafe_get doc i)) in
      let edges =
        List.filter_map
          (fun lbl ->
            let after = image label_acc.(lbl) cls in
            if after = 0 then None else Some (Edge (i, lbl, intern (i + 1) after)))
          (set_labels mask)
      in
      let skip =
        let after = image mask cls in
        if after = 0 then [] else [ Skip (intern (i + 1) after) ]
      in
      node.actions <- edges @ skip
    end
  done;
  trim_and_pack ct n root !all

(* General document pass for automata too large for one machine word:
   subsets are {!Bitset}s, interned by canonical content key. *)
let prepare_big g ct doc =
  let n = String.length doc in
  let nstates = ct.nstates in
  let counter = ref 0 in
  (* Layered subset interning by canonical bitset key.  Only the layer
     currently being produced (boundary i+1 while boundary i drains,
     in FIFO order) is ever probed, so a single table, reset when the
     boundary advances, covers all layers. *)
  let table : (string, node) Hashtbl.t = Hashtbl.create 64 in
  let table_boundary = ref 0 in
  let worklist = Queue.create () in
  let intern boundary set =
    if boundary <> !table_boundary then begin
      Hashtbl.reset table;
      table_boundary := boundary
    end;
    let k = Bitset.key set in
    match Hashtbl.find_opt table k with
    | Some node -> node
    | None ->
        let node = fresh_node counter boundary in
        Hashtbl.add table k node;
        Queue.add (node, set) worklist;
        node
  in
  (* Letter image of a subset under one byte class. *)
  let image =
    if ct.deterministic then (fun set cls ->
      let next = Bitset.create nstates in
      let det = ct.letter_det and nclasses = ct.nclasses in
      Bitset.iter
        (fun q ->
          let dst = det.((q * nclasses) + cls) in
          if dst >= 0 then Bitset.add next dst)
        set;
      next)
    else fun set cls ->
      let next = Bitset.create nstates in
      let off = ct.letter_off and dsts = ct.letter_dst and nclasses = ct.nclasses in
      Bitset.iter
        (fun q ->
          let cell = (q * nclasses) + cls in
          for k = off.(cell) to off.(cell + 1) - 1 do
            Bitset.add next dsts.(k)
          done)
        set;
      next
  in
  (* Distinct set-arc labels of a subset with their determinised
     targets, grouped through generation-stamped per-label scratch
     slots (no Marker.Set comparisons, no list search).  The returned
     order — reverse first-discovery — matches what the label-list
     accumulation of the original Enumerate produced, keeping the
     enumeration order of tuples identical. *)
  let nlabels = Array.length ct.labels in
  let label_stamp = Array.make (max 1 nlabels) (-1) in
  let label_tgt = Array.make (max 1 nlabels) (Bitset.create 0) in
  let generation = ref (-1) in
  let set_labels set =
    incr generation;
    let g = !generation in
    let found = ref [] in
    let off = ct.set_off and lbls = ct.set_lbl and dsts = ct.set_dst in
    Bitset.iter
      (fun q ->
        for k = off.(q) to off.(q + 1) - 1 do
          let lbl = lbls.(k) in
          if label_stamp.(lbl) <> g then begin
            label_stamp.(lbl) <- g;
            label_tgt.(lbl) <- Bitset.create nstates;
            found := lbl :: !found
          end;
          Bitset.add label_tgt.(lbl) dsts.(k)
        done)
      set;
    !found
  in
  let has_final set = Bitset.fold (fun q acc -> acc || ct.final.(q)) set false in
  let start = Bitset.create nstates in
  Bitset.add start ct.initial;
  let root = intern 0 start in
  let all = ref [] in
  while not (Queue.is_empty worklist) do
    Limits.check g;
    let node, set = Queue.take worklist in
    all := node :: !all;
    let i = node.boundary in
    if i = n then begin
      let eofs =
        List.filter_map
          (fun lbl -> if has_final label_tgt.(lbl) then Some (Eof_set lbl) else None)
          (set_labels set)
      in
      let eofs = if has_final set then eofs @ [ Eof_empty ] else eofs in
      node.actions <- eofs
    end
    else begin
      let cls = ct.class_of.(Char.code (String.unsafe_get doc i)) in
      let edges =
        List.filter_map
          (fun lbl ->
            let after = image label_tgt.(lbl) cls in
            if Bitset.is_empty after then None
            else Some (Edge (i, lbl, intern (i + 1) after)))
          (set_labels set)
      in
      let skip =
        let after = image set cls in
        if Bitset.is_empty after then [] else [ Skip (intern (i + 1) after) ]
      in
      node.actions <- edges @ skip
    end
  done;
  trim_and_pack ct n root !all

let prepare_gauge g ct doc = if ct.small then prepare_small g ct doc else prepare_big g ct doc

let prepare ?(limits = Limits.none) ct doc = prepare_gauge (Limits.start limits) ct doc

let stats p = { nodes = p.node_count; edges = p.edge_count; boundaries = p.doc_len + 1 }

let cardinal p = match p.root with None -> 0 | Some root -> root.count

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

type cursor = {
  mutable frames : (action list * int) list; (* unexplored siblings, picks length *)
  picks : (int * int) Vec.t; (* boundary, label id *)
  mutable current : action list;
  prepared : prepared;
}

let tuple_of_picks labels picks extra =
  let opens = Hashtbl.create 4 in
  let tuple = ref Span_tuple.empty in
  let apply (boundary, lbl) =
    Marker.Set.iter
      (function
        | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
        | Marker.Close x ->
            let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
            tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
      labels.(lbl)
  in
  Vec.iter apply picks;
  (match extra with Some pick -> apply pick | None -> ());
  !tuple

let cursor p =
  {
    frames = [];
    picks = Vec.create ();
    current = (match p.root with None -> [] | Some root -> root.actions);
    prepared = p;
  }

let rec next cur =
  match cur.current with
  | [] -> (
      match cur.frames with
      | [] -> None
      | (actions, plen) :: rest ->
          cur.frames <- rest;
          Vec.truncate cur.picks plen;
          cur.current <- actions;
          next cur)
  | action :: rest -> (
      if rest <> [] then cur.frames <- (rest, Vec.length cur.picks) :: cur.frames;
      cur.current <- [];
      let labels = cur.prepared.tables.labels in
      match action with
      | Eof_empty -> Some (tuple_of_picks labels cur.picks None)
      | Eof_set lbl -> Some (tuple_of_picks labels cur.picks (Some (cur.prepared.doc_len, lbl)))
      | Edge (i, lbl, t) ->
          ignore (Vec.push cur.picks (i, lbl));
          cur.current <- t.jump.actions;
          next cur
      | Skip t ->
          cur.current <- t.jump.actions;
          next cur)

let iter p f =
  let cur = cursor p in
  let rec loop () =
    match next cur with
    | None -> ()
    | Some tuple ->
        f tuple;
        loop ()
  in
  loop ()

let to_seq p =
  (* The cursor is mutable, so the raw unfold is ephemeral; memoising
     makes the sequence persistent (safe to re-traverse). *)
  Seq.memoize (Seq.unfold (fun cur -> Option.map (fun t -> (t, cur)) (next cur)) (cursor p))

let first p = next (cursor p)

let to_relation p =
  let r = ref (Span_relation.empty p.tables.vars) in
  iter p (fun t -> r := Span_relation.add !r t);
  !r

(* ------------------------------------------------------------------ *)
(* Whole-document and batch evaluation                                 *)

(* One gauge spans both phases: preprocessing and output collection
   draw from the same fuel, and the tuple cap applies to the collected
   relation. *)
let prepare_with_gauge = prepare_gauge
let cursor_next = next
let prepared_vars p = p.tables.vars

let eval_with_gauge g ct doc =
  let p = prepare_gauge g ct doc in
  let r = ref (Span_relation.empty p.tables.vars) in
  let count = ref 0 in
  iter p (fun t ->
      Limits.check g;
      incr count;
      Limits.check_tuples g !count;
      r := Span_relation.add !r t);
  !r

let eval ?(limits = Limits.none) ct doc = eval_with_gauge (Limits.start limits) ct doc

let eval_all ?jobs ?limits ct docs = Pool.map ?jobs (eval ?limits ct) docs

(* Each document gets its own gauge ([eval] starts one per call), so a
   poisoned or oversized document trips only its own slot. *)
let eval_all_result ?jobs ?limits ct docs = Pool.map_result ?jobs (eval ?limits ct) docs
