(** Compiled evaluation engine: spanner-only preprocessing (§2.5).

    The two-phase enumeration of {!Enumerate} splits evaluation into a
    preprocessing pass over the document and constant-delay output of
    tuples, but its preprocessing re-derives spanner-level facts on
    every document: marker-set labels are recollected by scanning
    association lists, every character probes {!Spanner_fa.Charset}
    membership per letter arc, and state subsets are interned through
    hash-bucket list scans.  All of that depends only on the spanner —
    it is {e combined} complexity in the sense of §2.5 ([10], [39]) —
    so this module hoists it into a one-time compilation:

    - the marker-set alphabet is interned into dense label ids;
    - letter arcs become flat transition tables indexed by
      [state × byte-class] ({!Spanner_fa.Charset.byte_classes}
      collapses the 256 bytes into the few classes the spanner can
      distinguish), with a single dense [int array] when the automaton
      is letter-deterministic and a CSR offsets/targets pair
      otherwise;
    - set arcs become a CSR adjacency ([state → (label id, target)]).

    The per-document pass ({!prepare}) is then array indexing only:
    when every state fits in one machine word (any automaton with at
    most [Sys.int_size] states), subsets are plain int bitmasks with
    precompiled per-(state, class) successor masks — the hot path is
    integer arithmetic and allocates nothing; larger automata fall
    back to {!Spanner_util.Bitset} subsets interned by canonical
    content key ({!Spanner_util.Bitset.key}).  The
    enumeration machinery (trimmed product DAG, jump pointers,
    duplicate-free cursor walk) is unchanged from {!Enumerate}, whose
    public API is now a thin wrapper over this module.

    Compiled tables are immutable after {!of_evset}, so one compiled
    spanner may be shared by concurrent domains: {!eval_all} evaluates
    a batch of documents in parallel through {!Spanner_util.Pool} —
    the document-database workload of §4 (one spanner, many
    documents), with deterministic output order. *)

type t
(** A compiled spanner: dense transition tables, shareable across
    domains. *)

(** [of_evset ?limits e] compiles [e] once.  O(|e| · 256) — combined
    complexity, independent of any document.  Under [limits], the
    state count is checked against the state cap before any table is
    allocated ({!Spanner_util.Limits.Spanner_error} with
    [Limit_exceeded {which = States; _}] on violation). *)
val of_evset : ?limits:Spanner_util.Limits.t -> Evset.t -> t

(** [of_formula ?limits f] is [of_evset ?limits (Evset.of_formula
    ?limits f)] — the limits also govern the formula-to-automaton
    construction. *)
val of_formula : ?limits:Spanner_util.Limits.t -> Regex_formula.t -> t

(** {1 Compiled-table accessors (bench/CLI introspection)} *)

val evset : t -> Evset.t
val vars : t -> Variable.Set.t

(** [states ct] is the number of automaton states. *)
val states : t -> int

(** [classes ct] is the number of byte classes (≤ 256). *)
val classes : t -> int

(** [alphabet ct] is the number of distinct marker-set labels. *)
val alphabet : t -> int

(** [is_letter_deterministic ct] tells whether the dense single-target
    letter table is in use (at most one successor per state and byte). *)
val is_letter_deterministic : t -> bool

(** [initial ct] is the initial state. *)
val initial : t -> int

(** [is_final_state ct q] tests finality of state [q]. *)
val is_final_state : t -> int -> bool

(** [iter_set_arcs ct q f] applies [f label_id dst] to each set arc
    leaving [q], in compiled (CSR) order. *)
val iter_set_arcs : t -> int -> (int -> int -> unit) -> unit

(** [label_markers ct lbl] is the marker set interned as label [lbl]
    (see {!alphabet}). *)
val label_markers : t -> int -> Marker.Set.t

(** [class_of_char ct c] is the byte class of [c] (see {!classes}). *)
val class_of_char : t -> char -> int

(** [class_matrix ct cls] is the one-letter transition matrix of byte
    class [cls]: entry [(p, q)] iff some letter arc labelled with a
    charset containing the class takes [p] to [q].  Every byte of the
    class has this same matrix — the SLP engine keeps one leaf matrix
    per class instead of one per character.
    @raise Invalid_argument if [cls] is not a class of [ct]. *)
val class_matrix : t -> int -> Spanner_util.Bitmatrix.t

(** [set_step_matrix ct] is the single-set-arc step: entry [(p, q)]
    iff some set arc takes [p] to [q], any label. *)
val set_step_matrix : t -> Spanner_util.Bitmatrix.t

(** {1 Per-factor transition summaries}

    The behaviour of the compiled automaton over one document factor,
    as a pair of boolean state×state matrices: [pure] relates [p] to
    [q] when some run over the factor from [p] to [q] reads letters
    only; [mixed] when some such run also takes at least one set arc
    (placing markers).  Summaries form a monoid under
    {!summary_compose}, with {!summary_of_terminal} on single
    characters — exactly the shape needed to evaluate a spanner
    bottom-up over an SLP and to reuse cached summaries of shared
    nodes under complex document editing (§4.2–4.3; the incremental
    subsystem {!Spanner_incr.Incr} builds on these). *)

type summary = { pure : Spanner_util.Bitmatrix.t; mixed : Spanner_util.Bitmatrix.t }

(** [summary_of_terminal ct c] is the summary of the one-character
    factor [c]: the letter step, and one optional preceding set arc
    for the mixed part.  O(states²/word + set arcs). *)
val summary_of_terminal : t -> char -> summary

(** [summary_compose l r] is the summary of the concatenation X·Y from
    the summaries of X and Y: pure runs compose pure parts; a mixed
    run places a marker in X or in Y (or both).  Three boolean matrix
    products. *)
val summary_compose : summary -> summary -> summary

(** {1 Per-document preprocessing and enumeration} *)

type prepared

(** [prepare ?limits ct doc] runs the data-complexity pass: O(|doc|)
    array lookups for a fixed spanner, producing the trimmed product
    DAG.  Under [limits], each product node consumes one unit of fuel
    and the wall-clock deadline is probed every ~4K nodes, so an
    oversized document fails with [Limit_exceeded] instead of running
    away. *)
val prepare : ?limits:Spanner_util.Limits.t -> t -> string -> prepared

(** [prepare_with_gauge g ct doc] is {!prepare} drawing on the
    caller's running gauge instead of starting a fresh one — so one
    budget can span preprocessing {e and} the enumeration that follows
    (the contract of {!eval}, exposed for streaming pipelines that
    enumerate through a {!cursor}). *)
val prepare_with_gauge : Spanner_util.Limits.gauge -> t -> string -> prepared

(** [prepared_vars p] is the variable set of the spanner [p] was
    prepared from (the schema of the enumerated tuples). *)
val prepared_vars : prepared -> Variable.Set.t

(** [iter p f] calls [f] exactly once per result tuple. *)
val iter : prepared -> (Span_tuple.t -> unit) -> unit

(** [to_seq p] enumerates the tuples on demand (persistent). *)
val to_seq : prepared -> Span_tuple.t Seq.t

(** [first p] is the first tuple, if any, without full enumeration. *)
val first : prepared -> Span_tuple.t option

(** [cardinal p] is the number of result tuples, O(1) after
    preparation (path counts are accumulated during the trim pass). *)
val cardinal : prepared -> int

(** [to_relation p] materialises the result relation. *)
val to_relation : prepared -> Span_relation.t

(** Preprocessing statistics; O(1) — counts are recorded at
    {!prepare} time. *)
type stats = {
  nodes : int;  (** useful product nodes *)
  edges : int;  (** useful product edges *)
  boundaries : int;  (** |doc| + 1 *)
}

val stats : prepared -> stats

(** {1 Pull-based enumeration}

    The native cursor over the trimmed product DAG: each {!cursor_next}
    resumes the duplicate-free depth-first walk exactly where the last
    tuple left it, so the first [k] tuples cost O(k) pulls after
    preprocessing — the paper's constant-delay claim (§2.5) as an
    incremental API.  {!iter}/{!to_seq} are built on the same walk;
    this exposes it to the streaming layer ({!Spanner_engine.Cursor}). *)

type cursor

(** [cursor p] starts a fresh walk over [p] (cheap; no enumeration
    happens until the first pull). *)
val cursor : prepared -> cursor

(** [cursor_next c] is the next result tuple, or [None] once the walk
    is exhausted (and forever after). *)
val cursor_next : cursor -> Span_tuple.t option

(** {1 Whole-document and batch evaluation} *)

(** [eval ?limits ct doc] is ⟦ct⟧(doc) through prepare + enumerate.
    One gauge spans both phases (fuel and deadline are shared), and
    the collected relation is capped at [limits.max_tuples]. *)
val eval : ?limits:Spanner_util.Limits.t -> t -> string -> Span_relation.t

(** [eval_with_gauge g ct doc] is {!eval} drawing on the caller's
    running gauge instead of starting a fresh one — for pipelines
    where earlier work (e.g. decompressing [doc] out of an SLP) must
    share the document's budget. *)
val eval_with_gauge : Spanner_util.Limits.gauge -> t -> string -> Span_relation.t

(** [eval_all ?jobs ?limits ct docs] evaluates every document of
    [docs], [jobs] domains at a time (default
    {!Spanner_util.Pool.default_jobs}; [~jobs:1] is sequential).
    Results are in input order and identical for every [jobs] — the
    per-document computation is deterministic and shares only the
    immutable compiled tables.  Each document is metered by its own
    gauge started from [limits]; the first failure aborts the whole
    batch (all-or-nothing semantics — see {!eval_all_result}). *)
val eval_all :
  ?jobs:int -> ?limits:Spanner_util.Limits.t -> t -> string array -> Span_relation.t array

(** [eval_all_result ?jobs ?limits ct docs] is {!eval_all} with
    partial-failure semantics: a document that fails (malformed,
    over-budget, …) degrades to its [Error] slot while every healthy
    document still completes. *)
val eval_all_result :
  ?jobs:int ->
  ?limits:Spanner_util.Limits.t ->
  t ->
  string array ->
  (Span_relation.t, exn) result array
