module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec
module Charset = Spanner_fa.Charset

(* The enumeration engine proper lives in {!Compiled}: the spanner is
   compiled once into dense transition tables and the per-document
   pass is array indexing only.  This module keeps the historical API
   (used throughout the library) as a thin wrapper — each call
   compiles the spanner and runs the document pass, which is what the
   original implementation effectively re-did per document anyway. *)

type prepared = Compiled.prepared

type stats = { nodes : int; edges : int; boundaries : int }

let prepare ?limits e doc = Compiled.prepare ?limits (Compiled.of_evset ?limits e) doc

let stats p =
  let s = Compiled.stats p in
  { nodes = s.Compiled.nodes; edges = s.Compiled.edges; boundaries = s.Compiled.boundaries }

let cardinal = Compiled.cardinal
let iter = Compiled.iter
let to_seq = Compiled.to_seq
let first = Compiled.first

let to_relation ?limits e doc = Compiled.eval ?limits (Compiled.of_evset ?limits e) doc

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)

(* The pre-compilation engine, kept verbatim as a differential-testing
   oracle and benchmark baseline: it interleaves spanner-level work
   (marker-set label collection via list scans, per-character Charset
   membership, hash-bucket subset interning) with the document pass.
   Semantics are identical to the compiled engine; only the constant
   factors differ. *)
module Reference = struct
  type node = {
    id : int;
    boundary : int;
    mutable actions : action list;
    mutable useful : bool;
    mutable jump : node; (* deepest markerless descendant chain entry *)
    mutable count : int; (* number of accepting runs through this node *)
  }

  and action =
    | Eof_empty
    | Eof_set of Marker.Set.t
    | Edge of int * Marker.Set.t * node
    | Skip of node

  type prepared = {
    doc_len : int;
    root : node option;
    vars : Variable.Set.t;
    node_count : int;
    edge_count : int;
  }

  let prepare e doc =
    let n = String.length doc in
    let counter = ref 0 in
    let fresh boundary =
      let id = !counter in
      incr counter;
      let rec node =
        { id; boundary; actions = []; useful = false; jump = node; count = 0 }
      in
      node
    in
    (* Layered interning of state subsets. *)
    let layers = Array.init (n + 1) (fun _ -> Hashtbl.create 8) in
    let worklist = Queue.create () in
    let intern boundary set =
      let table = layers.(boundary) in
      let k = Bitset.hash set in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt table k) in
      match List.find_opt (fun (s, _) -> Bitset.equal s set) bucket with
      | Some (_, node) -> node
      | None ->
          let node = fresh boundary in
          Hashtbl.replace table k ((set, node) :: bucket);
          Queue.add (node, set) worklist;
          node
    in
    let letter_image set c =
      let next = Bitset.create (Evset.size e) in
      Bitset.iter
        (fun q ->
          Evset.iter_letter_arcs e q (fun cs dst -> if Charset.mem cs c then Bitset.add next dst))
        set;
      next
    in
    let set_labels set =
      (* Distinct marker-set labels with their determinised targets. *)
      let labels = ref [] in
      Bitset.iter
        (fun q ->
          Evset.iter_set_arcs e q (fun s dst ->
              match List.find_opt (fun (s', _) -> Marker.Set.equal s s') !labels with
              | Some (_, tgt) -> Bitset.add tgt dst
              | None ->
                  let tgt = Bitset.create (Evset.size e) in
                  Bitset.add tgt dst;
                  labels := (s, tgt) :: !labels))
        set;
      !labels
    in
    let has_final set = Bitset.fold (fun q acc -> acc || Evset.is_final e q) set false in
    let start = Bitset.create (Evset.size e) in
    Bitset.add start (Evset.initial e);
    let root = intern 0 start in
    let all = ref [] in
    while not (Queue.is_empty worklist) do
      let node, set = Queue.take worklist in
      all := node :: !all;
      let i = node.boundary in
      if i = n then begin
        let eofs =
          List.filter_map
            (fun (s, tgt) -> if has_final tgt then Some (Eof_set s) else None)
            (set_labels set)
        in
        let eofs = if has_final set then eofs @ [ Eof_empty ] else eofs in
        node.actions <- eofs
      end
      else begin
        let c = doc.[i] in
        let edges =
          List.filter_map
            (fun (s, tgt) ->
              let after = letter_image tgt c in
              if Bitset.is_empty after then None else Some (Edge (i, s, intern (i + 1) after)))
            (set_labels set)
        in
        let skip =
          let after = letter_image set c in
          if Bitset.is_empty after then [] else [ Skip (intern (i + 1) after) ]
        in
        node.actions <- edges @ skip
      end
    done;
    (* Backward pass over boundaries: usefulness, trimming, path counts
       and jump pointers.  Nodes were discovered in boundary order, so
       the reversed discovery list is a valid topological order. *)
    let node_count = ref 0 and edge_count = ref 0 in
    List.iter
      (fun node ->
        let keep action =
          match action with
          | Eof_empty | Eof_set _ -> true
          | Edge (_, _, t) | Skip t -> t.useful
        in
        node.actions <- List.filter keep node.actions;
        node.useful <- node.actions <> [];
        if node.useful then begin
          incr node_count;
          edge_count := !edge_count + List.length node.actions
        end;
        node.count <-
          List.fold_left
            (fun acc action ->
              acc
              + match action with Eof_empty | Eof_set _ -> 1 | Edge (_, _, t) | Skip t -> t.count)
            0 node.actions;
        node.jump <-
          (match node.actions with
          | [ Skip t ] -> t.jump
          | _ -> node))
      !all;
    {
      doc_len = n;
      root = (if root.useful then Some root.jump else None);
      vars = Evset.vars e;
      node_count = !node_count;
      edge_count = !edge_count;
    }

  let cardinal p = match p.root with None -> 0 | Some root -> root.count

  type cursor = {
    mutable frames : (action list * int) list; (* unexplored siblings, picks length *)
    picks : (int * Marker.Set.t) Vec.t;
    mutable current : action list;
    prepared : prepared;
  }

  let tuple_of_picks picks extra =
    let opens = Hashtbl.create 4 in
    let tuple = ref Span_tuple.empty in
    let apply (boundary, s) =
      Marker.Set.iter
        (function
          | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
          | Marker.Close x ->
              let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
              tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
        s
    in
    Vec.iter apply picks;
    (match extra with Some pick -> apply pick | None -> ());
    !tuple

  let cursor p =
    {
      frames = [];
      picks = Vec.create ();
      current = (match p.root with None -> [] | Some root -> root.actions);
      prepared = p;
    }

  let rec next cur =
    match cur.current with
    | [] -> (
        match cur.frames with
        | [] -> None
        | (actions, plen) :: rest ->
            cur.frames <- rest;
            Vec.truncate cur.picks plen;
            cur.current <- actions;
            next cur)
    | action :: rest -> (
        if rest <> [] then cur.frames <- (rest, Vec.length cur.picks) :: cur.frames;
        cur.current <- [];
        match action with
        | Eof_empty -> Some (tuple_of_picks cur.picks None)
        | Eof_set s -> Some (tuple_of_picks cur.picks (Some (cur.prepared.doc_len, s)))
        | Edge (i, s, t) ->
            ignore (Vec.push cur.picks (i, s));
            cur.current <- t.jump.actions;
            next cur
        | Skip t ->
            cur.current <- t.jump.actions;
            next cur)

  let iter p f =
    let cur = cursor p in
    let rec loop () =
      match next cur with
      | None -> ()
      | Some tuple ->
          f tuple;
          loop ()
    in
    loop ()

  let to_relation e doc =
    let p = prepare e doc in
    let r = ref (Span_relation.empty p.vars) in
    iter p (fun t -> r := Span_relation.add !r t);
    !r
end
