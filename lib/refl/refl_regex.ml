open Spanner_core
module Regex = Spanner_fa.Regex
module Charset = Spanner_fa.Charset

type t =
  | Empty
  | Epsilon
  | Chars of Charset.t
  | Bind of Variable.t * t
  | Ref of Variable.t
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let empty = Empty

let epsilon = Epsilon

let chars cs = if Charset.is_empty cs then Empty else Chars cs

let char c = Chars (Charset.singleton c)

let bind x r = Bind (x, r)

let reference x = Ref x

let concat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | _ -> Concat (a, b)

let alt a b = match (a, b) with Empty, r | r, Empty -> r | _ -> Alt (a, b)

let star = function Empty | Epsilon -> Epsilon | r -> Star r

let plus = function Empty -> Empty | Epsilon -> Epsilon | r -> Plus r

let opt = function Empty | Epsilon -> Epsilon | r -> Opt r

let concat_list rs = List.fold_left concat Epsilon rs

let alt_list rs = List.fold_left alt Empty rs

let str s = concat_list (List.map char (List.init (String.length s) (String.get s)))

let rec of_formula = function
  | Regex_formula.Empty -> Empty
  | Regex_formula.Epsilon -> Epsilon
  | Regex_formula.Chars cs -> Chars cs
  | Regex_formula.Bind (x, f) -> Bind (x, of_formula f)
  | Regex_formula.Concat (a, b) -> concat (of_formula a) (of_formula b)
  | Regex_formula.Alt (a, b) -> alt (of_formula a) (of_formula b)
  | Regex_formula.Star f -> star (of_formula f)
  | Regex_formula.Plus f -> plus (of_formula f)
  | Regex_formula.Opt f -> opt (of_formula f)

let rec vars = function
  | Empty | Epsilon | Chars _ -> Variable.Set.empty
  | Bind (x, r) -> Variable.Set.add x (vars r)
  | Ref x -> Variable.Set.singleton x
  | Concat (a, b) | Alt (a, b) -> Variable.Set.union (vars a) (vars b)
  | Star r | Plus r | Opt r -> vars r

let rec size = function
  | Empty | Epsilon | Chars _ | Ref _ -> 1
  | Bind (_, r) | Star r | Plus r | Opt r -> 1 + size r
  | Concat (a, b) | Alt (a, b) -> 1 + size a + size b

(* ------------------------------------------------------------------ *)
(* Parser: regex-formula grammar plus [&x]                             *)

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Regex.Parse_error (message, st.pos))

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_ident st =
  let start = st.pos in
  let is_ident c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a variable name";
  String.sub st.input start (st.pos - start)

let parse_class st =
  let start = st.pos - 1 in
  let rec find_end i escaped =
    if i >= String.length st.input then fail st "unterminated character class"
    else if escaped then find_end (i + 1) false
    else
      match st.input.[i] with
      | '\\' -> find_end (i + 1) true
      | ']' -> i
      | _ -> find_end (i + 1) false
  in
  let close = find_end st.pos false in
  let fragment = String.sub st.input start (close - start + 1) in
  st.pos <- close + 1;
  match Regex.parse fragment with
  | Regex.Chars cs -> Chars cs
  | Regex.Empty -> Empty
  | _ -> fail st "malformed character class"

let rec parse_alt st =
  let left = parse_concat st in
  match peek st with
  | Some '|' ->
      advance st;
      alt left (parse_alt st)
  | _ -> left

and parse_concat st =
  let rec loop acc =
    match peek st with
    | None | Some ('|' | ')' | '}') -> acc
    | Some ('*' | '+' | '?') -> fail st "dangling postfix operator"
    | Some _ -> loop (concat acc (parse_postfix st))
  in
  loop Epsilon

and parse_bounds st =
  let read_int () =
    let start = st.pos in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st
    done;
    if st.pos = start then fail st "expected a repetition count";
    match int_of_string_opt (String.sub st.input start (st.pos - start)) with
    | Some n -> n
    | None -> fail st "repetition count too large"
  in
  let m = read_int () in
  let bounds =
    match peek st with
    | Some ',' ->
        advance st;
        (match peek st with
        | Some '0' .. '9' ->
            let n = read_int () in
            if n < m then fail st "repetition bounds out of order";
            (m, Some n)
        | _ -> (m, None))
    | _ -> (m, Some m)
  in
  expect st '}';
  bounds

and parse_postfix st =
  let base = parse_atom st in
  let rec loop r =
    match peek st with
    | Some '*' ->
        advance st;
        loop (star r)
    | Some '+' ->
        advance st;
        loop (plus r)
    | Some '?' ->
        advance st;
        loop (opt r)
    | Some '{' ->
        advance st;
        let m, n = parse_bounds st in
        Regex.check_bounds ~fail:(fail st) ~size:(size r) m n;
        let repeated = concat_list (List.init m (fun _ -> r)) in
        let tail =
          match n with
          | None -> star r
          | Some n -> concat_list (List.init (n - m) (fun _ -> opt r))
        in
        loop (concat repeated tail)
    | _ -> r
  in
  loop base

and parse_atom st =
  match peek st with
  | None -> fail st "expected an atom"
  | Some '!' ->
      advance st;
      let name = parse_ident st in
      expect st '{';
      let body = parse_alt st in
      expect st '}';
      Bind (Variable.of_string name, body)
  | Some '&' ->
      advance st;
      Ref (Variable.of_string (parse_ident st))
  | Some '(' ->
      advance st;
      let r = parse_alt st in
      expect st ')';
      r
  | Some '[' ->
      advance st;
      parse_class st
  | Some '.' ->
      advance st;
      Chars Charset.full
  | Some '\\' ->
      advance st;
      (match peek st with
      | Some c ->
          advance st;
          char c
      | None -> fail st "dangling escape")
  | Some (('{' | '}') as c) ->
      fail st (Printf.sprintf "reserved character '%c' must be escaped" c)
  | Some c ->
      advance st;
      char c

let parse input =
  let st = { input; pos = 0 } in
  let r = parse_alt st in
  (match peek st with None -> () | Some c -> fail st (Printf.sprintf "unexpected '%c'" c));
  r

let rec pp_prec prec ppf r =
  let parens lvl body = if prec > lvl then Format.fprintf ppf "(%t)" body else body ppf in
  match r with
  | Empty -> Format.pp_print_string ppf "[]"
  | Epsilon -> Format.pp_print_string ppf "()"
  | Chars cs ->
      (match Charset.elements cs with
      | [ c ] ->
          if Regex.is_meta c then Format.fprintf ppf "\\%c" c else Format.fprintf ppf "%c" c
      | _ -> Charset.pp ppf cs)
  | Bind (x, r) -> Format.fprintf ppf "!%a{%a}" Variable.pp x (pp_prec 0) r
  | Ref x -> Format.fprintf ppf "&%a" Variable.pp x
  | Alt (a, b) -> parens 0 (fun ppf -> Format.fprintf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b)
  | Concat (a, b) ->
      parens 1 (fun ppf -> Format.fprintf ppf "%a%a" (pp_prec 1) a (pp_prec 1) b)
  | Star a -> parens 2 (fun ppf -> Format.fprintf ppf "%a*" (pp_prec 2) a)
  | Plus a -> parens 2 (fun ppf -> Format.fprintf ppf "%a+" (pp_prec 2) a)
  | Opt a -> parens 2 (fun ppf -> Format.fprintf ppf "%a?" (pp_prec 2) a)

let pp ppf r = pp_prec 0 ppf r

let to_string r = Format.asprintf "%a" pp r
