open Spanner_core
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db
module Cde = Spanner_slp.Cde
module Lru = Spanner_util.Lru
module Bitmatrix = Spanner_util.Bitmatrix
module Vec = Spanner_util.Vec
module Limits = Spanner_util.Limits

type session = {
  ct : Compiled.t;
  db : Doc_db.t;
  cache : (Slp.id, Compiled.summary) Lru.t;
  nondet : bool;  (* runs may repeat tuples; computed once, not per cursor *)
  ends : Spanner_util.Bitset.t;  (* states that close a run: final, or a set arc from final *)
  mutable created : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  nodes_created : int;
}

let create ?(cache_capacity = 65536) ct db =
  let s =
    {
      ct;
      db;
      cache = Lru.create ~capacity:cache_capacity ();
      nondet = not (Evset.is_deterministic (Compiled.evset ct));
      ends =
        (let ends = Spanner_util.Bitset.create (max 1 (Compiled.states ct)) in
         for q = 0 to Compiled.states ct - 1 do
           if Compiled.is_final_state ct q then Spanner_util.Bitset.add ends q
           else
             Compiled.iter_set_arcs ct q (fun _ q' ->
                 if Compiled.is_final_state ct q' then Spanner_util.Bitset.add ends q)
         done;
         ends);
      created = 0;
    }
  in
  Slp.on_new_node (Doc_db.store db) (fun id ->
      s.created <- s.created + 1;
      (* A fresh id cannot have a summary yet; dropping defensively
         keeps the cache sound even if ids were ever recycled. *)
      Lru.remove s.cache id);
  s

let compiled s = s.ct
let database s = s.db
let nondeterministic s = s.nondet

let rec summary_g g s id =
  match Lru.find s.cache id with
  | Some sum -> sum
  | None ->
      (* one unit of fuel per summary actually computed (a cache miss):
         composing is the states³/word work the budget must bound *)
      Limits.check g;
      let sum =
        match Slp.node (Doc_db.store s.db) id with
        | Slp.Leaf c -> Compiled.summary_of_terminal s.ct c
        | Slp.Pair (l, r) -> Compiled.summary_compose (summary_g g s l) (summary_g g s r)
      in
      Lru.add s.cache id sum;
      sum

let summary s id = summary_g (Limits.unlimited ()) s id

(* Pick lists are (0-based boundary, label id); identical to the
   compiled engine's representation, decoded through the interned
   marker-set alphabet. *)
let tuple_of_picks ct picks extra =
  let opens = Hashtbl.create 4 in
  let tuple = ref Span_tuple.empty in
  let apply (boundary, lbl) =
    Marker.Set.iter
      (function
        | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
        | Marker.Close x ->
            let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
            tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
      (Compiled.label_markers ct lbl)
  in
  Vec.iter apply picks;
  (match extra with Some pick -> apply pick | None -> ());
  !tuple

(* Enumerate the marker-placing runs init→q over node [id], guided by
   the summary matrices so that every branch taken yields at least one
   run (the §4.2 scheme of Slp_spanner, over compiled tables).  [f] may
   see the same tuple along several runs when the compiled automaton is
   nondeterministic; [eval] collects into a relation, which dedups. *)
let iter_runs_g g s id f =
  let ct = s.ct in
  let store = Doc_db.store s.db in
  let n = Compiled.states ct in
  let init = Compiled.initial ct in
  let doc_len = Slp.len store id in
  let picks = Vec.create () in
  let rec go id p q offset k =
    (* one unit per branch of the run enumeration *)
    Limits.check g;
    match Slp.node store id with
    | Slp.Leaf _ ->
        (* pure summary of a leaf = the letter step matrix *)
        let letter = (summary_g g s id).Compiled.pure in
        Compiled.iter_set_arcs ct p (fun lbl p' ->
            if Bitmatrix.get letter p' q then begin
              ignore (Vec.push picks (offset, lbl));
              k ();
              ignore (Vec.pop picks)
            end)
    | Slp.Pair (l, r) ->
        let m = Slp.len store l in
        let sl = summary_g g s l and sr = summary_g g s r in
        for mid = 0 to n - 1 do
          if Bitmatrix.get sl.Compiled.mixed p mid && Bitmatrix.get sr.Compiled.pure mid q then
            go l p mid offset k;
          if Bitmatrix.get sl.Compiled.pure p mid && Bitmatrix.get sr.Compiled.mixed mid q then
            go r mid q (offset + m) k;
          if Bitmatrix.get sl.Compiled.mixed p mid && Bitmatrix.get sr.Compiled.mixed mid q then
            go l p mid offset (fun () -> go r mid q (offset + m) k)
        done
  in
  let root = summary_g g s id in
  for q = 0 to n - 1 do
    let reach_pure = Bitmatrix.get root.Compiled.pure init q in
    let reach_mixed = Bitmatrix.get root.Compiled.mixed init q in
    if reach_pure || reach_mixed then begin
      (* runs ending at q, then the trailing boundary's optional set arc *)
      let endings = ref [] in
      if Compiled.is_final_state ct q then endings := None :: !endings;
      Compiled.iter_set_arcs ct q (fun lbl q' ->
          if Compiled.is_final_state ct q' then endings := Some (doc_len, lbl) :: !endings);
      List.iter
        (fun ending ->
          if reach_pure then f (tuple_of_picks ct picks ending);
          if reach_mixed then go id init q 0 (fun () -> f (tuple_of_picks ct picks ending)))
        !endings
    end
  done

let iter_runs ?gauge s id f =
  let g = match gauge with Some g -> g | None -> Limits.unlimited () in
  iter_runs_g g s id f

(* ------------------------------------------------------------------ *)
(* Pull enumeration                                                    *)

(* The explicit-machine counterpart of [iter_runs_g]: the same
   frame-stack design as the native SLP cursor
   ({!Spanner_slp.Slp_spanner.cursor}), over cached summaries instead
   of prepared node matrices.  Summaries carry no transposed twins
   (they are LRU-cached and transient), so split states are probed one
   by one exactly as [go] above does — the win here is losing the
   effect-handler inversion, not the scan.  Emission order matches
   [iter_runs] exactly.  Metering mirrors [iter_runs_g]: one unit per
   node descent, plus whatever summary misses cost on the way. *)

type task =
  | Emit
  | Expl of { x_id : Slp.id; x_p : int; x_q : int; x_off : int; x_k : task }

type frame =
  | Pair_f of {
      g_l : Slp.id;
      g_r : Slp.id;
      g_p : int;
      g_q : int;
      g_off : int;
      g_roff : int;
      g_k : task;
      s_l : Compiled.summary;
      s_r : Compiled.summary;
      mutable g_mid : int;
      mutable g_stage : int;  (* within g_mid: 0 try L, 1 try R, 2 try B *)
    }
  | Leaf_f of {
      f_off : int;
      f_k : task;
      f_arcs : int array;
      mutable f_arc : int;
      f_picks : int;  (* picks depth at entry: truncate to this on resume *)
    }

type cursor = {
  k_s : session;
  k_g : Limits.gauge;
  k_root : Slp.id;
  k_len : int;
  k_n : int;
  k_picks : (int * int) Vec.t;
  k_stack : frame Vec.t;
  k_pure : Bitmatrix.t;  (* root summary rows, held for the q scan *)
  k_mixed : Bitmatrix.t;
  mutable k_q : int;
  mutable k_endings : (int * int) option list;
  mutable k_ending : (int * int) option;
  mutable k_emit_pure : bool;
  mutable k_start_mixed : bool;
  mutable k_done : bool;
}

let cursor ?gauge s id =
  let g = match gauge with Some g -> g | None -> Limits.unlimited () in
  let root = summary_g g s id in
  {
    k_s = s;
    k_g = g;
    k_root = id;
    k_len = Slp.len (Doc_db.store s.db) id;
    k_n = Compiled.states s.ct;
    k_picks = Vec.create ();
    k_stack = Vec.create ();
    k_pure = root.Compiled.pure;
    k_mixed = root.Compiled.mixed;
    k_q = -1;
    k_endings = [];
    k_ending = None;
    k_emit_pure = false;
    k_start_mixed = false;
    k_done = false;
  }

let start_expl cur id p q off k =
  (* one unit per node descent, as in [iter_runs_g]'s [go] *)
  Limits.check cur.k_g;
  let s = cur.k_s in
  match Slp.node (Doc_db.store s.db) id with
  | Slp.Leaf _ ->
      let letter = (summary_g cur.k_g s id).Compiled.pure in
      let arcs = Vec.create () in
      Compiled.iter_set_arcs s.ct p (fun lbl p' ->
          if Bitmatrix.get letter p' q then ignore (Vec.push arcs lbl));
      ignore
        (Vec.push cur.k_stack
           (Leaf_f
              {
                f_off = off;
                f_k = k;
                f_arcs = Vec.to_array arcs;
                f_arc = 0;
                f_picks = Vec.length cur.k_picks;
              }))
  | Slp.Pair (l, r) ->
      ignore
        (Vec.push cur.k_stack
           (Pair_f
              {
                g_l = l;
                g_r = r;
                g_p = p;
                g_q = q;
                g_off = off;
                g_roff = off + Slp.len (Doc_db.store s.db) l;
                g_k = k;
                s_l = summary_g cur.k_g s l;
                s_r = summary_g cur.k_g s r;
                g_mid = 0;
                g_stage = 0;
              }))

let perform cur k =
  match k with
  | Emit -> Some (tuple_of_picks cur.k_s.ct cur.k_picks cur.k_ending)
  | Expl x ->
      start_expl cur x.x_id x.x_p x.x_q x.x_off x.x_k;
      None

let step cur =
  match Vec.last cur.k_stack with
  | Leaf_f f ->
      Vec.truncate cur.k_picks f.f_picks;
      if f.f_arc >= Array.length f.f_arcs then begin
        ignore (Vec.pop cur.k_stack);
        None
      end
      else begin
        let lbl = f.f_arcs.(f.f_arc) in
        f.f_arc <- f.f_arc + 1;
        ignore (Vec.push cur.k_picks (f.f_off, lbl));
        perform cur f.f_k
      end
  | Pair_f f ->
      let descended = ref false in
      while (not !descended) && f.g_mid < cur.k_n do
        let mid = f.g_mid in
        match f.g_stage with
        | 0 ->
            f.g_stage <- 1;
            if
              Bitmatrix.get f.s_l.Compiled.mixed f.g_p mid
              && Bitmatrix.get f.s_r.Compiled.pure mid f.g_q
            then begin
              descended := true;
              start_expl cur f.g_l f.g_p mid f.g_off f.g_k
            end
        | 1 ->
            f.g_stage <- 2;
            if
              Bitmatrix.get f.s_l.Compiled.pure f.g_p mid
              && Bitmatrix.get f.s_r.Compiled.mixed mid f.g_q
            then begin
              descended := true;
              start_expl cur f.g_r mid f.g_q f.g_roff f.g_k
            end
        | _ ->
            f.g_mid <- mid + 1;
            f.g_stage <- 0;
            if
              Bitmatrix.get f.s_l.Compiled.mixed f.g_p mid
              && Bitmatrix.get f.s_r.Compiled.mixed mid f.g_q
            then begin
              descended := true;
              start_expl cur f.g_l f.g_p mid f.g_off
                (Expl { x_id = f.g_r; x_p = mid; x_q = f.g_q; x_off = f.g_roff; x_k = f.g_k })
            end
      done;
      if not !descended then ignore (Vec.pop cur.k_stack);
      None

let cursor_next cur =
  let ct = cur.k_s.ct in
  let init = Compiled.initial ct in
  let result = ref None in
  while !result == None && not cur.k_done do
    if cur.k_emit_pure then begin
      cur.k_emit_pure <- false;
      result := Some (tuple_of_picks ct cur.k_picks cur.k_ending)
    end
    else if cur.k_start_mixed then begin
      cur.k_start_mixed <- false;
      start_expl cur cur.k_root init cur.k_q 0 Emit
    end
    else if not (Vec.is_empty cur.k_stack) then result := step cur
    else begin
      match cur.k_endings with
      | e :: rest ->
          cur.k_endings <- rest;
          cur.k_ending <- e;
          cur.k_emit_pure <- Bitmatrix.get cur.k_pure init cur.k_q;
          cur.k_start_mixed <- Bitmatrix.get cur.k_mixed init cur.k_q
      | [] -> (
          let from = cur.k_q + 1 in
          let q =
            let ends = cur.k_s.ends in
            let a =
              Spanner_util.Bitset.first_common_from (Bitmatrix.row cur.k_pure init) ends from
            in
            let b =
              Spanner_util.Bitset.first_common_from (Bitmatrix.row cur.k_mixed init) ends from
            in
            if a < 0 then b else if b < 0 then a else min a b
          in
          if q < 0 then cur.k_done <- true
          else begin
            cur.k_q <- q;
            let endings = ref [] in
            if Compiled.is_final_state ct q then endings := None :: !endings;
            Compiled.iter_set_arcs ct q (fun lbl q' ->
                if Compiled.is_final_state ct q' then
                  endings := Some (cur.k_len, lbl) :: !endings);
            cur.k_endings <- !endings
          end)
    end
  done;
  !result

let eval ?(limits = Limits.none) s id =
  let g = Limits.start limits in
  let r = ref (Span_relation.empty (Compiled.vars s.ct)) in
  let count = ref 0 in
  iter_runs_g g s id (fun tuple ->
      incr count;
      Limits.check_tuples g !count;
      r := Span_relation.add !r tuple);
  !r

let eval_doc ?limits s name = eval ?limits s (Doc_db.find s.db name)

let eval_all ?limits s =
  (* Sequential on purpose: the cache and the store are shared and
     mutable.  Per-document result slots mirror {!Doc_db.eval_all} —
     one over-budget document must not take the batch down. *)
  List.map
    (fun name -> (name, match eval_doc ?limits s name with r -> Ok r | exception e -> Error e))
    (Doc_db.names s.db)

let edit ?limits s name e =
  let id = Cde.materialize s.db name e in
  (id, eval ?limits s id)

let stats s =
  let l = Lru.stats s.cache in
  {
    hits = l.Lru.hits;
    misses = l.Lru.misses;
    evictions = l.Lru.evictions;
    entries = Lru.length s.cache;
    capacity = Lru.capacity s.cache;
    nodes_created = s.created;
  }

let reset_stats s = Lru.reset_stats s.cache
