open Spanner_core
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db
module Cde = Spanner_slp.Cde
module Lru = Spanner_util.Lru
module Bitmatrix = Spanner_util.Bitmatrix
module Vec = Spanner_util.Vec
module Limits = Spanner_util.Limits

type session = {
  ct : Compiled.t;
  db : Doc_db.t;
  cache : (Slp.id, Compiled.summary) Lru.t;
  mutable created : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  nodes_created : int;
}

let create ?(cache_capacity = 65536) ct db =
  let s = { ct; db; cache = Lru.create ~capacity:cache_capacity (); created = 0 } in
  Slp.on_new_node (Doc_db.store db) (fun id ->
      s.created <- s.created + 1;
      (* A fresh id cannot have a summary yet; dropping defensively
         keeps the cache sound even if ids were ever recycled. *)
      Lru.remove s.cache id);
  s

let compiled s = s.ct
let database s = s.db

let rec summary_g g s id =
  match Lru.find s.cache id with
  | Some sum -> sum
  | None ->
      (* one unit of fuel per summary actually computed (a cache miss):
         composing is the states³/word work the budget must bound *)
      Limits.check g;
      let sum =
        match Slp.node (Doc_db.store s.db) id with
        | Slp.Leaf c -> Compiled.summary_of_terminal s.ct c
        | Slp.Pair (l, r) -> Compiled.summary_compose (summary_g g s l) (summary_g g s r)
      in
      Lru.add s.cache id sum;
      sum

let summary s id = summary_g (Limits.unlimited ()) s id

(* Pick lists are (0-based boundary, label id); identical to the
   compiled engine's representation, decoded through the interned
   marker-set alphabet. *)
let tuple_of_picks ct picks extra =
  let opens = Hashtbl.create 4 in
  let tuple = ref Span_tuple.empty in
  let apply (boundary, lbl) =
    Marker.Set.iter
      (function
        | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
        | Marker.Close x ->
            let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
            tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
      (Compiled.label_markers ct lbl)
  in
  Vec.iter apply picks;
  (match extra with Some pick -> apply pick | None -> ());
  !tuple

(* Enumerate the marker-placing runs init→q over node [id], guided by
   the summary matrices so that every branch taken yields at least one
   run (the §4.2 scheme of Slp_spanner, over compiled tables).  [f] may
   see the same tuple along several runs when the compiled automaton is
   nondeterministic; [eval] collects into a relation, which dedups. *)
let iter_runs_g g s id f =
  let ct = s.ct in
  let store = Doc_db.store s.db in
  let n = Compiled.states ct in
  let init = Compiled.initial ct in
  let doc_len = Slp.len store id in
  let picks = Vec.create () in
  let rec go id p q offset k =
    (* one unit per branch of the run enumeration *)
    Limits.check g;
    match Slp.node store id with
    | Slp.Leaf _ ->
        (* pure summary of a leaf = the letter step matrix *)
        let letter = (summary_g g s id).Compiled.pure in
        Compiled.iter_set_arcs ct p (fun lbl p' ->
            if Bitmatrix.get letter p' q then begin
              ignore (Vec.push picks (offset, lbl));
              k ();
              ignore (Vec.pop picks)
            end)
    | Slp.Pair (l, r) ->
        let m = Slp.len store l in
        let sl = summary_g g s l and sr = summary_g g s r in
        for mid = 0 to n - 1 do
          if Bitmatrix.get sl.Compiled.mixed p mid && Bitmatrix.get sr.Compiled.pure mid q then
            go l p mid offset k;
          if Bitmatrix.get sl.Compiled.pure p mid && Bitmatrix.get sr.Compiled.mixed mid q then
            go r mid q (offset + m) k;
          if Bitmatrix.get sl.Compiled.mixed p mid && Bitmatrix.get sr.Compiled.mixed mid q then
            go l p mid offset (fun () -> go r mid q (offset + m) k)
        done
  in
  let root = summary_g g s id in
  for q = 0 to n - 1 do
    let reach_pure = Bitmatrix.get root.Compiled.pure init q in
    let reach_mixed = Bitmatrix.get root.Compiled.mixed init q in
    if reach_pure || reach_mixed then begin
      (* runs ending at q, then the trailing boundary's optional set arc *)
      let endings = ref [] in
      if Compiled.is_final_state ct q then endings := None :: !endings;
      Compiled.iter_set_arcs ct q (fun lbl q' ->
          if Compiled.is_final_state ct q' then endings := Some (doc_len, lbl) :: !endings);
      List.iter
        (fun ending ->
          if reach_pure then f (tuple_of_picks ct picks ending);
          if reach_mixed then go id init q 0 (fun () -> f (tuple_of_picks ct picks ending)))
        !endings
    end
  done

let iter_runs ?gauge s id f =
  let g = match gauge with Some g -> g | None -> Limits.unlimited () in
  iter_runs_g g s id f

let eval ?(limits = Limits.none) s id =
  let g = Limits.start limits in
  let r = ref (Span_relation.empty (Compiled.vars s.ct)) in
  let count = ref 0 in
  iter_runs_g g s id (fun tuple ->
      incr count;
      Limits.check_tuples g !count;
      r := Span_relation.add !r tuple);
  !r

let eval_doc ?limits s name = eval ?limits s (Doc_db.find s.db name)

let eval_all ?limits s =
  (* Sequential on purpose: the cache and the store are shared and
     mutable.  Per-document result slots mirror {!Doc_db.eval_all} —
     one over-budget document must not take the batch down. *)
  List.map
    (fun name -> (name, match eval_doc ?limits s name with r -> Ok r | exception e -> Error e))
    (Doc_db.names s.db)

let edit ?limits s name e =
  let id = Cde.materialize s.db name e in
  (id, eval ?limits s id)

let stats s =
  let l = Lru.stats s.cache in
  {
    hits = l.Lru.hits;
    misses = l.Lru.misses;
    evictions = l.Lru.evictions;
    entries = Lru.length s.cache;
    capacity = Lru.capacity s.cache;
    nodes_created = s.created;
  }

let reset_stats s = Lru.reset_stats s.cache
