(** Incremental evaluation: spanner results that survive CDE edits
    (§4.3, [40]; "Dynamic Complexity of Document Spanners").

    The compiled engine ({!Spanner_core.Compiled}) re-runs its full
    per-document pass after every edit, although a complex document
    edit over a strongly balanced SLP creates only O(|φ|·log d) new
    nodes — all the structure below those nodes is shared with the
    pre-edit document.  This module caches, per (compiled spanner, SLP
    node), the node's transition summary
    ({!Spanner_core.Compiled.summary}: the state→state behaviour of
    the automaton over the node's derived factor), so that evaluating
    a spanner on a document reduces to combining cached summaries
    bottom-up; after an edit, only the freshly created nodes are ever
    computed, and re-evaluation costs O(new nodes · states³/word)
    plus the output.

    A {!session} binds one compiled spanner to one document database
    and holds a bounded LRU cache ({!Spanner_util.Lru}) keyed by node
    id.  Because the database's documents share nodes of one store
    (Figure 1: A1, A2 and A3 share almost everything), a single cache
    serves every document — evaluating A3 after A1 is pure cache
    hits.  A node-creation hook ({!Spanner_slp.Slp.on_new_node})
    counts the nodes each edit creates and drops any stale cache entry
    under a fresh id.

    Evaluation enumerates runs through the summary matrices exactly
    like {!Spanner_slp.Slp_spanner} (§4.2), but over the compiled
    tables and the shared cache.  Results are collected into a
    relation, so a nondeterministic compiled automaton (which may
    yield the same tuple along several runs) is handled by set
    semantics. *)

open Spanner_core
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db
module Cde = Spanner_slp.Cde

type session

(** Cache statistics: LRU counters plus the session-lifetime node
    creation count (every node the store created since {!create},
    whether or not an edit of this session caused it). *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** summaries currently cached *)
  capacity : int;
  nodes_created : int;
}

(** [create ?cache_capacity ct db] is a session evaluating [ct] over
    the documents of [db], with a summary cache of at most
    [cache_capacity] nodes (default 65536). *)
val create : ?cache_capacity:int -> Compiled.t -> Doc_db.t -> session

val compiled : session -> Compiled.t
val database : session -> Doc_db.t

(** [nondeterministic s] is [true] when the compiled automaton is not
    deterministic — enumeration ({!iter_runs}, {!cursor}) may then
    repeat tuples and set-semantics consumers must deduplicate.
    Computed once at session creation. *)
val nondeterministic : session -> bool

(** [summary s id] is the cached (or freshly computed and cached)
    transition summary of node [id]. *)
val summary : session -> Slp.id -> Compiled.summary

(** [eval ?limits s id] is ⟦ct⟧(𝔇(id)), computed from cached
    summaries; only nodes missing from the cache are (recursively)
    summarised.  Under [limits], every summary miss and every branch
    of the run enumeration consumes fuel, the deadline is probed
    periodically, and every enumerated run counts against the tuple
    cap — an over-approximation of the distinct-tuple count when the
    compiled automaton is nondeterministic
    ({!Spanner_util.Limits.Spanner_error} on violation — the cache
    keeps whatever summaries were completed, so a retry under a larger
    budget resumes the work already paid for). *)
val eval : ?limits:Spanner_util.Limits.t -> session -> Slp.id -> Span_relation.t

(** [iter_runs ?gauge s id f] enumerates the accepting runs of the
    compiled automaton over 𝔇(id) from cached summaries, calling [f]
    once per run (once per tuple when the automaton is deterministic;
    a nondeterministic one may repeat tuples — {!eval} deduplicates
    through set semantics, and the streaming layer
    ({!Spanner_engine.Cursor.of_incr}) deduplicates on the fly).
    Summary misses and enumeration branches are metered by [gauge]
    when given — the hook the cursor layer pulls through, so budgets
    fire mid-stream. *)
val iter_runs :
  ?gauge:Spanner_util.Limits.gauge -> session -> Slp.id -> (Span_tuple.t -> unit) -> unit

(** {2 Pull enumeration}

    The native pull counterpart of {!iter_runs} — the same explicit
    machine as {!Spanner_slp.Slp_spanner.cursor}, over cached
    summaries.  Emission order is identical to {!iter_runs}. *)

type cursor

(** [cursor ?gauge s id] opens a pull cursor over the accepting runs
    of 𝔇(id).  Summaries missing from the cache are computed (and
    metered) lazily as the descent reaches them; [gauge] meters every
    node descent and summary miss exactly as {!iter_runs} does, so
    budgets fire mid-stream.  The session's cache and store are shared
    mutable state: pulls must stay on the session's domain. *)
val cursor : ?gauge:Spanner_util.Limits.gauge -> session -> Slp.id -> cursor

(** [cursor_next c] is the next run's tuple, or [None] when exhausted.
    Duplicate-free iff the automaton is deterministic
    ({!nondeterministic}). *)
val cursor_next : cursor -> Span_tuple.t option

(** [eval_doc ?limits s name] is [eval] on the designated document
    [name].
    @raise Not_found on unknown names. *)
val eval_doc : ?limits:Spanner_util.Limits.t -> session -> string -> Span_relation.t

(** [eval_all ?limits s] evaluates every document of the database in
    designation order — {!Doc_db.eval_all} without decompression,
    sharing one cache across all documents.  Sequential (the cache and
    store are shared and mutable), with per-document partial-failure
    slots: each document is metered by its own gauge from [limits],
    and a failing document degrades to [Error] while the rest of the
    batch completes. *)
val eval_all :
  ?limits:Spanner_util.Limits.t -> session -> (string * (Span_relation.t, exn) result) list

(** [edit ?limits s name e] applies the CDE-expression [e], designates
    the result as document [name] ({!Cde.materialize}), and returns
    the new node together with its re-evaluated relation (metered by
    [limits] as in {!eval}).  Cost: the edit (O(|e|·log d) new nodes)
    + fresh summaries for exactly those nodes + output enumeration.
    @raise Invalid_argument on out-of-range positions (with the
    offending positions), [Not_found] on unknown document names. *)
val edit : ?limits:Spanner_util.Limits.t -> session -> string -> Cde.t -> Slp.id * Span_relation.t

val stats : session -> stats

(** [reset_stats s] zeroes hit/miss/eviction counters (cache contents
    are kept — the point of measuring a warm re-evaluation). *)
val reset_stats : session -> unit
