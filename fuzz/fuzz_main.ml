(* Fuzz harness for every parser/deserializer surface of the library.

   Property: feeding arbitrary bytes to a parser produces a typed,
   documented error or a successful parse — never an uncaught
   exception, a crash, or a hang.  "Typed" means:

   - Spanner_util.Limits.Spanner_error   (the unified error taxonomy)
   - Spanner_fa.Regex.Parse_error        (regex-level syntax errors)
   - Invalid_argument                    (documented validation errors)

   Anything else — raw Failure, Not_found, Out_of_memory,
   Assert_failure, Stack_overflow, array bounds — is a crash and fails
   the run.

   Inputs come from three springs, all driven by the deterministic
   Xoshiro PRNG so a failing run is reproducible from its seed:

   - replay: every checked-in corpus file runs through its target
     first (regression seeds for past crashes);
   - mutation: corpus seeds (plus a freshly serialised SLPDB image)
     mutated by byte flips, insertions, deletions, truncations,
     duplications and splices;
   - generation: random strings over a target-biased alphabet.

   Every parse runs under a small resource budget, so pathological but
   well-formed inputs (state blowups, huge repetitions) surface as
   Limit_exceeded instead of hanging the harness. *)

module X = Spanner_util.Xoshiro
module Limits = Spanner_util.Limits

let budget = Limits.make ~fuel:200_000 ~time_ms:2_000 ~max_states:512 ~max_tuples:20_000 ()

let allowed = function
  | Limits.Spanner_error _ -> true
  | Spanner_fa.Regex.Parse_error _ -> true
  | Invalid_argument _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Targets *)

type target = { name : string; alphabet : string; run : string -> unit }

let targets =
  [|
    {
      name = "formula";
      alphabet = "ab01!x{}[]()*+?|;,.-^\\&9 ";
      run = (fun s -> ignore (Spanner_core.Evset.of_formula ~limits:budget (Spanner_core.Regex_formula.parse s)));
    };
    {
      name = "refl";
      alphabet = "ab01!x&{}[]()*+?|;,.-^\\9 ";
      run = (fun s -> ignore (Spanner_refl.Refl_spanner.parse s));
    };
    {
      name = "datalog";
      alphabet = "pqxyzab(),.:-<>!{}*+;=% \n";
      run = (fun s -> ignore (Spanner_datalog.Datalog.parse ~limits:budget s));
    };
    {
      name = "cde";
      alphabet = "abcdoc()_,0123456789 concatextractdeleteinsertcopy";
      run = (fun s -> ignore (Spanner_slp.Cde.parse s));
    };
    {
      name = "algebra";
      alphabet = "rgxfileps&|()[],\":\\!xy{}ab*+? ";
      run =
        (fun s ->
          let e = Spanner_core.Algebra.parse s in
          (* a parse that succeeds must also plan, evaluate under the
             budget, and print back re-parseably *)
          let plan = Spanner_engine.Optimizer.optimize ~limits:budget e in
          ignore (Spanner_engine.Optimizer.eval ~limits:budget plan "abab");
          ignore (Spanner_core.Algebra.parse (Spanner_core.Algebra.to_string e)));
    };
    {
      name = "slpdb";
      alphabet = "";
      (* empty alphabet: full byte range *)
      run =
        (fun s ->
          let db = Spanner_slp.Serialize.read_string s in
          (* A database that deserializes must also survive freezing:
             walk every node of the snapshot structurally.  Never
             decompress here — a well-formed 60-byte image can derive
             an exponentially long document. *)
          let fz = Spanner_slp.Doc_db.freeze db in
          for id = 0 to Spanner_slp.Slp.frozen_size fz - 1 do
            (match Spanner_slp.Slp.frozen_node fz id with
            | Spanner_slp.Slp.Leaf _ -> ()
            | Spanner_slp.Slp.Pair (l, r) ->
                if l < 0 || l >= id || r < 0 || r >= id then
                  failwith "frozen pair child out of topological order");
            if Spanner_slp.Slp.frozen_len fz id <= 0 then
              failwith "frozen node with non-positive length"
          done);
    };
    {
      name = "arena";
      alphabet = "";
      (* empty alphabet: full byte range *)
      run =
        (fun s ->
          (* dispatch like Corpus.open_path: manifest magic → the text
             manifest grammar (parse only, no filesystem); anything
             else is an arena image.  An image that opens must also
             survive the full structural validation and a walk of
             every node through the flat accessors. *)
          if Spanner_store.Manifest.looks_like s then
            ignore (Spanner_store.Manifest.of_string s)
          else begin
            let a = Spanner_store.Arena.of_string s in
            Spanner_store.Arena.validate a;
            let fz = Spanner_store.Arena.frozen_view a in
            for id = 0 to Spanner_store.Arena.node_count a - 1 do
              ignore (Spanner_slp.Slp.frozen_node fz id);
              ignore (Spanner_slp.Slp.frozen_len fz id)
            done
          end);
    };
    {
      name = "serve";
      alphabet = "0123456789\nDEFINELOADQUERYXPSTACOUH abxy_-.=/{}*+";
      run = Spanner_serve.Protocol.fuzz_entry;
      (* frame decoding (hostile length prefixes, truncations), the
         request grammar, and the canonical-print round-trip *)
    };
  |]

let target_of_name name =
  Array.to_list targets
  |> List.find_opt (fun t ->
         String.length name >= String.length t.name
         && String.sub name 0 (String.length t.name) = t.name)

(* ------------------------------------------------------------------ *)
(* Input springs *)

let random_string rng alphabet len =
  if alphabet = "" then String.init len (fun _ -> Char.chr (X.int rng 256))
  else X.string rng alphabet len

let mutate rng s =
  let n = String.length s in
  match X.int rng 6 with
  | 0 when n > 0 ->
      (* point mutation *)
      let b = Bytes.of_string s in
      Bytes.set b (X.int rng n) (Char.chr (X.int rng 256));
      Bytes.to_string b
  | 1 ->
      (* insertion *)
      let i = X.int rng (n + 1) in
      String.sub s 0 i ^ String.make 1 (Char.chr (X.int rng 256)) ^ String.sub s i (n - i)
  | 2 when n > 0 ->
      (* deletion *)
      let i = X.int rng n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
  | 3 when n > 0 ->
      (* truncation *)
      String.sub s 0 (X.int rng n)
  | 4 when n > 0 ->
      (* duplicate a slice *)
      let i = X.int rng n in
      let len = 1 + X.int rng (n - i) in
      String.sub s 0 (i + len) ^ String.sub s i (len) ^ String.sub s (i + len) (n - i - len)
  | _ when n > 1 ->
      (* splice: swap the halves around a random cut *)
      let i = 1 + X.int rng (n - 1) in
      String.sub s i (n - i) ^ String.sub s 0 i
  | _ -> s ^ random_string rng "ab" 2

(* ------------------------------------------------------------------ *)
(* Corpus *)

let corpus_dir = "corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  let files =
    if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list |> List.sort String.compare
    else []
  in
  List.filter_map
    (fun f ->
      match target_of_name f with
      | Some t -> Some (t, f, read_file (Filename.concat corpus_dir f))
      | None -> None)
    files

(* A valid SLPDB image to mutate: corrupting a well-formed file probes
   much deeper into the deserializer than random bytes, which rarely
   survive the magic check. *)
let fresh_slpdb () =
  let db = Spanner_slp.Doc_db.create () in
  ignore (Spanner_slp.Doc_db.add_string db "d1" "abracadabra");
  ignore (Spanner_slp.Doc_db.add_string db "d2" "abcabcabcabc");
  Spanner_slp.Serialize.write_string db

(* Same idea for the arena deserializer: a well-formed image whose
   mutations reach past the header checksum. *)
let fresh_arena () =
  let db = Spanner_slp.Doc_db.create () in
  ignore (Spanner_slp.Doc_db.add_string db "d1" "abracadabra");
  ignore (Spanner_slp.Doc_db.add_string db "d2" "abcabcabcabc");
  let store = Spanner_slp.Doc_db.store db in
  let docs =
    List.map (fun n -> (n, Spanner_slp.Doc_db.find db n)) (Spanner_slp.Doc_db.names db)
  in
  Spanner_store.Arena.pack_bytes store docs

(* ------------------------------------------------------------------ *)
(* Driver *)

let escape s =
  String.concat "" (List.map (fun c -> Printf.sprintf "\\x%02x" (Char.code c))
                      (List.of_seq (String.to_seq s)))

let crashes = ref 0

let run_one (t : target) input =
  match t.run input with
  | () -> ()
  | exception e when allowed e -> ()
  | exception e ->
      incr crashes;
      Printf.eprintf "CRASH %s: %s\n  input: \"%s\"\n%!" t.name (Printexc.to_string e)
        (escape input)

let () =
  let seed = ref 42 in
  let iters = ref 50_000 in
  let spec =
    [
      ("--seed", Arg.Set_int seed, "PRNG seed (default 42)");
      ("--iters", Arg.Set_int iters, "number of fuzz inputs (default 50000)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "fuzz_main [options]";
  let rng = X.create !seed in
  (* 1. replay the checked-in crash corpus *)
  let seeds = corpus () in
  List.iter (fun (t, _, contents) -> run_one t contents) seeds;
  (* 2. seed pool per target: corpus files + a fresh SLPDB image *)
  let pool t =
    let own = List.filter_map (fun (t', _, c) -> if t' == t then Some c else None) seeds in
    if t.name = "slpdb" then fresh_slpdb () :: own
    else if t.name = "arena" then fresh_arena () :: own
    else own
  in
  let pools = Array.map (fun t -> Array.of_list (pool t)) targets in
  (* 3. random + mutation rounds *)
  for i = 0 to !iters - 1 do
    let ti = i mod Array.length targets in
    let t = targets.(ti) in
    let input =
      if Array.length pools.(ti) > 0 && X.bool rng then begin
        let s = ref (X.choose rng pools.(ti)) in
        for _ = 0 to X.int rng 4 do
          s := mutate rng !s
        done;
        !s
      end
      else random_string rng t.alphabet (1 + X.int rng 60)
    in
    run_one t input
  done;
  if !crashes > 0 then begin
    Printf.eprintf "%d crash(es) out of %d inputs (seed %d)\n%!" !crashes !iters !seed;
    exit 1
  end
  else Printf.printf "fuzz: %d inputs across %d targets, 0 crashes (seed %d)\n%!" !iters
      (Array.length targets) !seed
